"""Opcode table for the SASS-like ISA.

Each opcode carries its operand shape (how many register sources it can
take, whether it writes a destination), its execution class (which
functional unit runs it and with what latency family), and its semantic
function used by the functional reference executor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..errors import IsaError

_MASK32 = 0xFFFFFFFF


class OpClass(enum.Enum):
    """Functional-unit class of an opcode (drives latency and Fig. 4 split)."""

    ALU = "alu"  # integer / simple FP pipeline
    SFU = "sfu"  # transcendental / special function
    MEM_LOAD = "mem-load"
    MEM_STORE = "mem-store"
    CONTROL = "control"  # branches, barriers, exit
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.MEM_LOAD, OpClass.MEM_STORE)

    @property
    def is_control(self) -> bool:
        return self is OpClass.CONTROL


def _s32(x: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    x &= _MASK32
    return x - (1 << 32) if x & 0x80000000 else x


def _alu_add(a: int, b: int, c: int) -> int:
    return (a + b) & _MASK32


def _alu_sub(a: int, b: int, c: int) -> int:
    return (a - b) & _MASK32


def _alu_mul(a: int, b: int, c: int) -> int:
    return (a * b) & _MASK32


def _alu_mad(a: int, b: int, c: int) -> int:
    return (a * b + c) & _MASK32


def _alu_mov(a: int, b: int, c: int) -> int:
    return a & _MASK32


def _alu_and(a: int, b: int, c: int) -> int:
    return (a & b) & _MASK32


def _alu_or(a: int, b: int, c: int) -> int:
    return (a | b) & _MASK32


def _alu_xor(a: int, b: int, c: int) -> int:
    return (a ^ b) & _MASK32


def _alu_shl(a: int, b: int, c: int) -> int:
    return (a << (b & 31)) & _MASK32


def _alu_shr(a: int, b: int, c: int) -> int:
    return (a & _MASK32) >> (b & 31)


def _alu_min(a: int, b: int, c: int) -> int:
    return min(_s32(a), _s32(b)) & _MASK32


def _alu_max(a: int, b: int, c: int) -> int:
    return max(_s32(a), _s32(b)) & _MASK32


def _alu_set_ne(a: int, b: int, c: int) -> int:
    return 1 if (a & _MASK32) != (b & _MASK32) else 0


def _alu_set_lt(a: int, b: int, c: int) -> int:
    return 1 if _s32(a) < _s32(b) else 0


def _alu_sel(a: int, b: int, c: int) -> int:
    return (b if a else c) & _MASK32


def _sfu_rcp(a: int, b: int, c: int) -> int:
    # Fixed-point reciprocal stand-in; exact semantics are irrelevant to
    # the pipeline study, determinism is what matters.
    return (0xFFFFFFFF // a) & _MASK32 if a else _MASK32


def _sfu_sqrt(a: int, b: int, c: int) -> int:
    return int((a & _MASK32) ** 0.5) & _MASK32


@dataclass(frozen=True)
class Opcode:
    """One entry of the opcode table.

    Attributes:
        name: assembly mnemonic (e.g. ``add``, ``ld.global``).
        op_class: functional-unit class.
        num_sources: maximum register sources the opcode accepts.
        has_dest: whether the opcode writes a destination register.
        semantic: pure function on up to three 32-bit source values used
            by the reference executor (``None`` for control/memory ops,
            whose semantics live in the executor itself).
    """

    name: str
    op_class: OpClass
    num_sources: int
    has_dest: bool
    semantic: Optional[Callable[[int, int, int], int]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not 0 <= self.num_sources <= 3:
            raise IsaError(f"{self.name}: num_sources must be 0..3")

    def __str__(self) -> str:
        return self.name


def _build_table() -> Dict[str, Opcode]:
    entries: Sequence[Opcode] = [
        # Arithmetic / logic (ALU class).
        Opcode("mov", OpClass.ALU, 1, True, _alu_mov),
        Opcode("add", OpClass.ALU, 2, True, _alu_add),
        Opcode("sub", OpClass.ALU, 2, True, _alu_sub),
        Opcode("mul", OpClass.ALU, 2, True, _alu_mul),
        Opcode("mad", OpClass.ALU, 3, True, _alu_mad),
        Opcode("fma", OpClass.ALU, 3, True, _alu_mad),
        Opcode("and", OpClass.ALU, 2, True, _alu_and),
        Opcode("or", OpClass.ALU, 2, True, _alu_or),
        Opcode("xor", OpClass.ALU, 2, True, _alu_xor),
        Opcode("shl", OpClass.ALU, 2, True, _alu_shl),
        Opcode("shr", OpClass.ALU, 2, True, _alu_shr),
        Opcode("min", OpClass.ALU, 2, True, _alu_min),
        Opcode("max", OpClass.ALU, 2, True, _alu_max),
        Opcode("set.ne", OpClass.ALU, 2, True, _alu_set_ne),
        Opcode("set.lt", OpClass.ALU, 2, True, _alu_set_lt),
        Opcode("sel", OpClass.ALU, 3, True, _alu_sel),
        # Special function unit.
        Opcode("rcp", OpClass.SFU, 1, True, _sfu_rcp),
        Opcode("sqrt", OpClass.SFU, 1, True, _sfu_sqrt),
        Opcode("sin", OpClass.SFU, 1, True, _sfu_sqrt),
        Opcode("exp", OpClass.SFU, 1, True, _sfu_sqrt),
        # Memory.  Loads take an address register; stores take address +
        # value and write no destination.
        Opcode("ld.global", OpClass.MEM_LOAD, 1, True),
        Opcode("ld.shared", OpClass.MEM_LOAD, 1, True),
        Opcode("ld.local", OpClass.MEM_LOAD, 1, True),
        Opcode("st.global", OpClass.MEM_STORE, 2, False),
        Opcode("st.shared", OpClass.MEM_STORE, 2, False),
        Opcode("st.local", OpClass.MEM_STORE, 2, False),
        # Control.
        Opcode("bra", OpClass.CONTROL, 0, False),
        Opcode("ssy", OpClass.CONTROL, 0, False),
        Opcode("bar.sync", OpClass.CONTROL, 0, False),
        Opcode("ret", OpClass.CONTROL, 0, False),
        Opcode("exit", OpClass.CONTROL, 0, False),
        Opcode("nop", OpClass.NOP, 0, False),
    ]
    return {op.name: op for op in entries}


#: The immutable opcode table, keyed by mnemonic.
OPCODE_TABLE: Dict[str, Opcode] = _build_table()


def opcode_by_name(name: str) -> Opcode:
    """Look up an opcode; raise :class:`IsaError` for unknown mnemonics."""
    try:
        return OPCODE_TABLE[name]
    except KeyError:
        raise IsaError(f"unknown opcode {name!r}") from None
