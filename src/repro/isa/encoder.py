"""Binary encoding of instructions, including BOW-WR's two hint bits.

The paper's BOW-WR passes its compiler decision to the hardware "using
two bits in the instruction".  This module defines a compact 64-bit
encoding that carries those bits, demonstrating that the hint fits in an
instruction word, and provides a loss-tolerant decoder used by tests to
round-trip programs.

Layout (LSB first):

======  =====  ==========================================
bits    width  field
======  =====  ==========================================
0-7     8      opcode index (into the sorted opcode table)
8-15    8      destination register (0xFF when absent)
16-23   8      source 0 (0xFF when absent)
24-31   8      source 1
32-39   8      source 2
40-41   2      writeback hint (to_oc, to_rf)
42      1      has-immediate flag
43-45   3      guard predicate id
46      1      guard predicate negated
47      1      guard predicate present
48-63   16     immediate low half — or, when the has-immediate flag is
               clear: bits 48-50 predicate-destination id, bit 51 its
               present flag (compares write a predicate instead of
               carrying a 16-bit immediate, as in SASS)
======  =====  ==========================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import EncodingError
from .instruction import Instruction, WritebackHint
from .opcodes import OPCODE_TABLE
from .registers import Predicate, Register

_NO_REG = 0xFF

#: Stable opcode numbering: sorted mnemonics.
_OPCODE_INDEX = {name: i for i, name in enumerate(sorted(OPCODE_TABLE))}
_OPCODE_BY_INDEX = {i: OPCODE_TABLE[name] for name, i in _OPCODE_INDEX.items()}


def _hint_bits(hint: WritebackHint) -> int:
    to_oc, to_rf = hint.bits
    return (int(to_oc)) | (int(to_rf) << 1)


def _hint_from_bits(bits: int) -> WritebackHint:
    return WritebackHint.from_bits(bool(bits & 1), bool(bits & 2))


def encode_instruction(inst: Instruction) -> int:
    """Encode an instruction into a 64-bit word."""
    try:
        opcode_index = _OPCODE_INDEX[inst.opcode.name]
    except KeyError:
        raise EncodingError(f"opcode {inst.opcode.name!r} not in table") from None

    word = opcode_index & 0xFF
    word |= (inst.dest.id if inst.dest is not None else _NO_REG) << 8
    for slot in range(3):
        value = inst.sources[slot].id if slot < len(inst.sources) else _NO_REG
        word |= value << (16 + 8 * slot)
    word |= _hint_bits(inst.hint) << 40
    if inst.immediate is not None and inst.pred_dest is not None:
        raise EncodingError(
            "an instruction cannot carry both a 16-bit immediate and a "
            "predicate destination (they share encoding space)"
        )
    if inst.immediate is not None:
        word |= 1 << 42
        word |= (inst.immediate & 0xFFFF) << 48
    elif inst.pred_dest is not None:
        word |= (inst.pred_dest.id & 0x7) << 48
        word |= 1 << 51
    if inst.predicate is not None:
        word |= (inst.predicate.id & 0x7) << 43
        word |= int(inst.predicate.negated) << 46
        word |= 1 << 47
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 64-bit word produced by :func:`encode_instruction`.

    Immediates are truncated to their low 16 bits by the encoding; the
    decoder restores that truncated value.  ``uid`` is freshly assigned.
    """
    if word < 0 or word >= (1 << 64):
        raise EncodingError(f"word out of range: {word:#x}")

    opcode_index = word & 0xFF
    opcode = _OPCODE_BY_INDEX.get(opcode_index)
    if opcode is None:
        raise EncodingError(f"unknown opcode index {opcode_index}")

    dest_bits = (word >> 8) & 0xFF
    if dest_bits == _NO_REG:
        # 0xFF is both the no-dest sentinel and the sink register's id;
        # the opcode's shape disambiguates.
        dest: Optional[Register] = Register(_NO_REG) if opcode.has_dest else None
    else:
        dest = Register(dest_bits)

    sources = []
    for slot in range(3):
        bits = (word >> (16 + 8 * slot)) & 0xFF
        if bits != _NO_REG:
            sources.append(Register(bits))

    hint = _hint_from_bits((word >> 40) & 0x3)

    immediate: Optional[int] = None
    pred_dest: Optional[Predicate] = None
    if (word >> 42) & 1:
        immediate = (word >> 48) & 0xFFFF
    elif (word >> 51) & 1:
        pred_dest = Predicate((word >> 48) & 0x7)

    predicate: Optional[Predicate] = None
    if (word >> 47) & 1:
        predicate = Predicate((word >> 43) & 0x7, negated=bool((word >> 46) & 1))

    return Instruction(
        opcode=opcode,
        dest=dest,
        sources=tuple(sources),
        immediate=immediate,
        predicate=predicate,
        pred_dest=pred_dest,
        hint=hint,
    )


def encode_program(program) -> Tuple[int, ...]:
    """Encode a sequence of instructions."""
    return tuple(encode_instruction(inst) for inst in program)


def decode_program(words) -> Tuple[Instruction, ...]:
    """Decode a sequence of 64-bit words."""
    return tuple(decode_instruction(word) for word in words)
