"""Architectural register and predicate names.

A *warp register* is the unit the register file stores and the unit BOW
forwards: one 32-bit value per thread in the warp, 128 bytes in all.
Registers are identified by a small non-negative integer; ``Register``
wraps that integer with validation and a SASS-like ``$rN`` rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from ..errors import IsaError

#: Upper bound on architectural register ids; generous relative to the
#: 255-register SASS limit but keeps encodings to one byte.
MAX_REGISTER_ID = 255

#: Upper bound on predicate ids (SASS has 7 predicate registers).
MAX_PREDICATE_ID = 7


@total_ordering
@dataclass(frozen=True)
class Register:
    """An architectural warp-register ``$rN``."""

    id: int

    def __post_init__(self) -> None:
        if not 0 <= self.id <= MAX_REGISTER_ID:
            raise IsaError(
                f"register id must be in [0, {MAX_REGISTER_ID}], got {self.id}"
            )

    def __str__(self) -> str:
        return f"$r{self.id}"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Register):
            return NotImplemented
        return self.id < other.id

    def __int__(self) -> int:
        return self.id


@dataclass(frozen=True)
class Predicate:
    """A predicate register ``$pN`` guarding an instruction."""

    id: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.id <= MAX_PREDICATE_ID:
            raise IsaError(
                f"predicate id must be in [0, {MAX_PREDICATE_ID}], got {self.id}"
            )

    def __str__(self) -> str:
        prefix = "!" if self.negated else ""
        return f"{prefix}$p{self.id}"


#: SASS's ``$o127`` bit-bucket: writes to it are discarded and allocate
#: no register-file storage.  Modeled as a distinguished register id one
#: past the architectural range's rendering (kept inside the numeric
#: range so encodings stay uniform).
SINK_REGISTER = Register(MAX_REGISTER_ID)


def reg(n: int) -> Register:
    """Shorthand constructor used heavily in tests and generators."""
    return Register(n)
