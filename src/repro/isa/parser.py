"""Assembler for the SASS-like text syntax.

The syntax mirrors the decuda-style listings the paper uses in its
Figure 6 snippet::

    ld.global.u32 $r3, [$r8];
    mov.u32 $r2, 0x00000ff4;
    mad.wide.u16 $r1, $r0.hi, $r2.lo, $r1;
    set.ne.s32.s32 $p0/$o127, $r3, $r1;

Rules:

* ``//`` starts a comment; blank lines are skipped; trailing ``;`` is
  optional.
* The mnemonic is matched against the opcode table after stripping type
  and width suffixes (``.u32``, ``.wide.u16``, ``.half``...), so
  ``mad.wide.u16`` assembles to the ``mad`` opcode.
* ``$rN`` is a register; ``$rN.lo``/``$rN.hi`` read halves of a register
  (modeled as a plain read of ``$rN`` — the RF access is the same).
* ``[$rN]`` is a memory address held in ``$rN``.
* ``s[0x18]`` / ``c[0x18]`` are shared/constant addresses (immediates —
  they do not touch the register file, matching the paper's accounting).
* ``$pN/$o127`` destinations write predicate ``$pN`` and discard the
  integer result (``$o127`` is the bit bucket).
* ``@$pN`` / ``@!$pN`` prefixes guard the instruction with a predicate.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from .instruction import Instruction
from .opcodes import OPCODE_TABLE, Opcode
from .registers import SINK_REGISTER, Predicate, Register

_REGISTER_RE = re.compile(r"^\$r(\d+)(?:\.(?:lo|hi))?$")
_MEM_RE = re.compile(r"^\[\$r(\d+)(?:\+(?:0x)?[0-9a-fA-F]+)?\]$")
_IMM_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|\d+)$")
_SPACE_IMM_RE = re.compile(r"^[sc]\[(0x[0-9a-fA-F]+|\d+)\]$")
_PRED_RE = re.compile(r"^\$p(\d+)$")
_PRED_SINK_RE = re.compile(r"^\$p(\d+)/\$o\d+$")

#: Suffixes stripped from mnemonics before opcode lookup.
_TYPE_SUFFIXES = {
    "u8", "u16", "u32", "u64",
    "s8", "s16", "s32", "s64",
    "f16", "f32", "f64", "b32",
    "wide", "half", "lo", "hi", "rn", "sat",
}


def _strip_mnemonic(raw: str) -> str:
    """Reduce e.g. ``mad.wide.u16`` to the table mnemonic ``mad``.

    Memory and compound opcodes keep their meaningful middle parts
    (``ld.global.u32`` -> ``ld.global``, ``set.ne.s32.s32`` -> ``set.ne``).
    """
    parts = raw.split(".")
    kept = [parts[0]]
    for part in parts[1:]:
        if part.lower() in _TYPE_SUFFIXES:
            continue
        kept.append(part)
    return ".".join(kept).lower()


def _parse_operand(token: str) -> Tuple[str, object]:
    """Classify one operand token.

    Returns one of ``("reg", Register)``, ``("mem", Register)``,
    ``("imm", int)``, ``("pred_dest", Predicate)``.
    """
    token = token.strip()
    match = _REGISTER_RE.match(token)
    if match:
        return "reg", Register(int(match.group(1)))
    match = _MEM_RE.match(token)
    if match:
        return "mem", Register(int(match.group(1)))
    if _IMM_RE.match(token):
        return "imm", int(token, 0)
    match = _SPACE_IMM_RE.match(token)
    if match:
        return "imm", int(match.group(1), 0)
    match = _PRED_SINK_RE.match(token) or _PRED_RE.match(token)
    if match:
        return "pred_dest", Predicate(int(match.group(1)))
    raise ParseError(f"unrecognized operand {token!r}")


def _split_operands(text: str) -> List[str]:
    """Split the operand field on commas that are outside brackets."""
    operands: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def parse_instruction(line: str, line_number: int = 0) -> Optional[Instruction]:
    """Assemble one source line; ``None`` for blank/comment-only lines."""
    text = line.split("//", 1)[0].strip().rstrip(";").strip()
    if not text:
        return None

    predicate: Optional[Predicate] = None
    if text.startswith("@"):
        guard, _, text = text.partition(" ")
        guard = guard[1:]
        negated = guard.startswith("!")
        match = _PRED_RE.match(guard.lstrip("!"))
        if not match:
            raise ParseError("malformed predicate guard", line_number, line)
        predicate = Predicate(int(match.group(1)), negated=negated)
        text = text.strip()

    mnemonic, _, operand_text = text.partition(" ")
    name = _strip_mnemonic(mnemonic)
    opcode = OPCODE_TABLE.get(name)
    if opcode is None:
        raise ParseError(f"unknown opcode {mnemonic!r} (-> {name!r})",
                         line_number, line)

    try:
        operands = [_parse_operand(tok) for tok in _split_operands(operand_text)]
    except ParseError as exc:
        raise ParseError(str(exc), line_number, line) from None

    return _assemble(opcode, operands, predicate, line_number, line)


def _assemble(
    opcode: Opcode,
    operands: List[Tuple[str, object]],
    predicate: Optional[Predicate],
    line_number: int,
    line: str,
) -> Instruction:
    dest: Optional[Register] = None
    pred_dest: Optional[Predicate] = None
    sources: List[Register] = []
    immediate: Optional[int] = None

    remaining = list(operands)
    if opcode.has_dest:
        if not remaining:
            raise ParseError(f"{opcode.name} needs a destination",
                             line_number, line)
        kind, value = remaining.pop(0)
        if kind == "reg":
            dest = value  # type: ignore[assignment]
        elif kind == "pred_dest":
            # Predicate-writing compares: the integer result is discarded
            # ($o127); model as a write to the sink register so the RF
            # write accounting matches SASS (a predicate write does not
            # touch the banked RF).  The boolean target is kept for the
            # SIMT lane-level executor.
            dest = SINK_REGISTER
            pred_dest = value  # type: ignore[assignment]
        else:
            raise ParseError(
                f"{opcode.name} destination must be a register", line_number, line
            )

    for kind, value in remaining:
        if kind in ("reg", "mem"):
            sources.append(value)  # type: ignore[arg-type]
        elif kind == "imm":
            immediate = value  # type: ignore[assignment]
        else:
            raise ParseError("predicate destination must come first",
                             line_number, line)

    if len(sources) > opcode.num_sources:
        raise ParseError(
            f"{opcode.name} takes at most {opcode.num_sources} register "
            f"sources, got {len(sources)}",
            line_number,
            line,
        )

    return Instruction(
        opcode=opcode,
        dest=dest,
        sources=tuple(sources),
        immediate=immediate,
        predicate=predicate,
        pred_dest=pred_dest,
    )


def parse_program(source: str) -> List[Instruction]:
    """Assemble a multi-line program, skipping blanks and comments."""
    program: List[Instruction] = []
    for number, line in enumerate(source.splitlines(), start=1):
        inst = parse_instruction(line, number)
        if inst is not None:
            program.append(inst)
    return program
