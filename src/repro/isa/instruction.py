"""The :class:`Instruction` value type.

An instruction is the unit everything else in the library consumes: the
compiler annotates it, the trace generators emit it, and the timing
model moves it through the pipeline.  It is immutable; compiler passes
produce annotated copies via :meth:`Instruction.with_hint`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..errors import IsaError
from .opcodes import OpClass, Opcode
from .registers import Predicate, Register

_instruction_ids = itertools.count()


class MemSpace(enum.Enum):
    """Address space of a memory instruction (drives its latency)."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"


class WritebackHint(enum.Enum):
    """BOW-WR's two writeback-hint bits (SS IV-B).

    The first bit enables writing the result to the BOC, the second
    enables writing it to the register file banks.
    """

    BOTH = (True, True)  # default: reused in window, live after it
    OC_ONLY = (True, False)  # transient: dies inside the window
    RF_ONLY = (False, True)  # no reuse inside the window

    @property
    def to_oc(self) -> bool:
        return self.value[0]

    @property
    def to_rf(self) -> bool:
        return self.value[1]

    @property
    def bits(self) -> Tuple[bool, bool]:
        return self.value

    @classmethod
    def from_bits(cls, to_oc: bool, to_rf: bool) -> "WritebackHint":
        for hint in cls:
            if hint.value == (to_oc, to_rf):
                return hint
        raise IsaError(f"invalid writeback hint bits ({to_oc}, {to_rf})")


@dataclass(frozen=True)
class Instruction:
    """One static SASS-like instruction.

    Attributes:
        opcode: entry from the opcode table.
        dest: destination register, or ``None`` when the opcode writes
            nothing (stores, control).
        sources: register source operands, at most ``opcode.num_sources``.
        immediate: immediate operand, when present.
        predicate: guarding predicate, when present.
        pred_dest: predicate register written by compare instructions
            (``set.ne $p0/$o127, ...``); the integer result goes to the
            sink register, the boolean lands here.  Consumed by the SIMT
            lane-level executor; the scalar pipeline ignores it.
        hint: BOW-WR writeback hint (compiler-assigned; ``BOTH`` is the
            architecture's default behaviour without hints).
        uid: unique id used to correlate static instructions across
            compiler passes and traces.
    """

    opcode: Opcode
    dest: Optional[Register] = None
    sources: Tuple[Register, ...] = ()
    immediate: Optional[int] = None
    predicate: Optional[Predicate] = None
    pred_dest: Optional[Predicate] = None
    hint: WritebackHint = WritebackHint.BOTH
    uid: int = field(default_factory=lambda: next(_instruction_ids))

    def __post_init__(self) -> None:
        if len(self.sources) > self.opcode.num_sources:
            raise IsaError(
                f"{self.opcode.name} takes at most {self.opcode.num_sources} "
                f"register sources, got {len(self.sources)}"
            )
        if self.dest is not None and not self.opcode.has_dest:
            raise IsaError(f"{self.opcode.name} cannot have a destination")
        if self.dest is None and self.opcode.has_dest:
            raise IsaError(f"{self.opcode.name} requires a destination")

    # -- classification ------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def is_memory(self) -> bool:
        return self.opcode.op_class.is_memory

    @property
    def is_load(self) -> bool:
        return self.opcode.op_class is OpClass.MEM_LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode.op_class is OpClass.MEM_STORE

    @property
    def is_control(self) -> bool:
        return self.opcode.op_class.is_control

    @property
    def is_branch(self) -> bool:
        return self.opcode.name in ("bra", "ssy")

    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    @property
    def num_register_operands(self) -> int:
        """Register *source* operands — the OCU occupancy of Figure 8."""
        return len(self.sources)

    @property
    def mem_space(self) -> Optional[MemSpace]:
        if not self.is_memory:
            return None
        suffix = self.opcode.name.split(".", 1)[1]
        return MemSpace(suffix)

    # -- register sets used by the compiler ----------------------------

    @property
    def uses(self) -> Tuple[Register, ...]:
        """Registers read by this instruction (sources + predicate excluded)."""
        return self.sources

    @property
    def defs(self) -> Tuple[Register, ...]:
        """Registers written by this instruction."""
        return (self.dest,) if self.dest is not None else ()

    def accessed_registers(self) -> Tuple[Register, ...]:
        """All registers touched, sources first then destination."""
        return self.sources + self.defs

    # -- derivation -----------------------------------------------------

    def with_hint(self, hint: WritebackHint) -> "Instruction":
        """An identical instruction carrying a new writeback hint.

        The ``uid`` is preserved so traces remain correlated with the
        compiler's static view.
        """
        return replace(self, hint=hint)

    def renumbered(self) -> "Instruction":
        """A copy with a fresh ``uid`` (used when cloning loop bodies)."""
        return replace(self, uid=next(_instruction_ids))

    # -- rendering -------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        if self.predicate is not None:
            parts.append(f"@{self.predicate}")
        parts.append(self.opcode.name)
        operands = []
        if self.pred_dest is not None:
            operands.append(f"{self.pred_dest}/$o127")
        elif self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(src) for src in self.sources)
        if self.immediate is not None:
            operands.append(f"0x{self.immediate & 0xFFFFFFFF:08x}")
        text = " ".join(parts)
        if operands:
            text += " " + ", ".join(operands)
        return text
