"""Lane-wise functional execution of masked traces.

Executes a masked trace with one 32-bit value *per lane* per register —
the state a warp-register actually holds (32 threads x 32 bits = 128 B,
paper SS II).  Instruction semantics are numpy-vectorized across lanes;
writes land only in active lanes; guarded instructions additionally
require the guard predicate; compares with a predicate destination set
per-lane predicate bits.

This layer grounds the scalar timing model: its per-warp value is the
lane-0 projection of this state, and tests check the projection is
consistent for non-divergent programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import SimulationError
from ..isa import Instruction, OpClass
from ..isa.registers import SINK_REGISTER
from .coalescing import CoalescingStats, transactions_for_addresses
from .mask import WARP_WIDTH, ActiveMask

_U32 = np.uint32
_MASK32 = np.uint64(0xFFFFFFFF)


def _lane_init(warp_id: int, register_id: int) -> np.ndarray:
    """Deterministic per-lane launch values (lane id folded in)."""
    lanes = np.arange(WARP_WIDTH, dtype=np.uint64)
    base = np.uint64((warp_id * 2654435761 + register_id * 40503 + 17)
                     & 0xFFFFFFFF)
    return ((base + lanes * np.uint64(0x9E3779B1)) & _MASK32).astype(_U32)


@dataclass
class LaneState:
    """Per-lane architectural state of one warp."""

    warp_id: int = 0
    registers: Dict[int, np.ndarray] = field(default_factory=dict)
    predicates: Dict[int, np.ndarray] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)

    def reg(self, register_id: int) -> np.ndarray:
        if register_id not in self.registers:
            self.registers[register_id] = _lane_init(self.warp_id,
                                                     register_id)
        return self.registers[register_id]

    def pred(self, predicate_id: int) -> np.ndarray:
        if predicate_id not in self.predicates:
            self.predicates[predicate_id] = np.zeros(WARP_WIDTH, dtype=bool)
        return self.predicates[predicate_id]

    def write_reg(self, register_id: int, values: np.ndarray,
                  mask: ActiveMask) -> None:
        current = self.reg(register_id).copy()
        lanes = np.fromiter(
            (lane in mask for lane in range(WARP_WIDTH)),
            dtype=bool, count=WARP_WIDTH,
        )
        current[lanes] = values.astype(_U32)[lanes]
        self.registers[register_id] = current

    def lane_view(self, register_id: int, lane: int = 0) -> int:
        return int(self.reg(register_id)[lane])


def _vector_op(name: str, a: np.ndarray, b: np.ndarray,
               c: np.ndarray) -> np.ndarray:
    """Vectorized 32-bit semantics matching the scalar opcode table."""
    a64 = a.astype(np.uint64)
    b64 = b.astype(np.uint64)
    c64 = c.astype(np.uint64)
    if name == "mov":
        result = a64
    elif name == "add":
        result = a64 + b64
    elif name == "sub":
        result = a64 - b64
    elif name == "mul":
        result = a64 * b64
    elif name in ("mad", "fma"):
        result = a64 * b64 + c64
    elif name == "and":
        result = a64 & b64
    elif name == "or":
        result = a64 | b64
    elif name == "xor":
        result = a64 ^ b64
    elif name == "shl":
        result = a64 << (b64 & np.uint64(31))
    elif name == "shr":
        result = (a64 & _MASK32) >> (b64 & np.uint64(31))
    elif name == "min":
        result = np.minimum(a.astype(np.int32), b.astype(np.int32)) \
            .astype(np.int64).astype(np.uint64)
    elif name == "max":
        result = np.maximum(a.astype(np.int32), b.astype(np.int32)) \
            .astype(np.int64).astype(np.uint64)
    elif name == "set.ne":
        result = (a64 != b64).astype(np.uint64)
    elif name == "set.lt":
        result = (a.astype(np.int32) < b.astype(np.int32)).astype(np.uint64)
    elif name == "sel":
        result = np.where(a64 != 0, b64, c64)
    elif name in ("rcp",):
        safe = np.where(a64 == 0, np.uint64(1), a64)
        result = np.where(a64 == 0, _MASK32, np.uint64(0xFFFFFFFF) // safe)
    elif name in ("sqrt", "sin", "exp"):
        result = np.sqrt((a64 & _MASK32).astype(np.float64)).astype(np.uint64)
    else:
        raise SimulationError(f"no lane semantics for {name!r}")
    return (result & _MASK32).astype(_U32)


@dataclass
class LaneExecutionResult:
    """Outcome of executing a masked trace lane-wise."""

    state: LaneState
    coalescing: CoalescingStats
    instructions_executed: int
    lanes_executed: int

    @property
    def simd_efficiency(self) -> float:
        total = self.instructions_executed * WARP_WIDTH
        return self.lanes_executed / total if total else 0.0


def execute_masked_trace(trace, warp_id: int = 0,
                         line_bytes: int = 128) -> LaneExecutionResult:
    """Execute a masked trace (from :mod:`repro.simt.stack`) lane-wise.

    Args:
        trace: iterable of :class:`~repro.simt.stack.MaskedInstruction`.
        warp_id: warp identity (seeds launch state and addressing).
        line_bytes: memory transaction granularity for coalescing stats.
    """
    state = LaneState(warp_id=warp_id)
    coalescing = CoalescingStats()
    executed = 0
    lanes_total = 0

    for item in trace:
        inst: Instruction = item.inst
        mask = item.mask
        if inst.predicate is not None:
            flags = state.pred(inst.predicate.id)
            if inst.predicate.negated:
                flags = ~flags
            mask = mask & ActiveMask.from_bools(flags)
        if not mask:
            continue
        executed += 1
        lanes_total += mask.count

        operands: List[np.ndarray] = [
            state.reg(src.id) for src in inst.sources
        ]
        imm = np.full(WARP_WIDTH, inst.immediate or 0, dtype=_U32)
        while len(operands) < 3:
            operands.append(imm)

        if inst.op_class is OpClass.MEM_LOAD:
            addresses = operands[0]
            coalescing.record(transactions_for_addresses(
                addresses, mask, line_bytes))
            values = np.fromiter(
                (state.memory.get(int(addr), int(addr) * 2654435761 & 0xFFFFFFFF)
                 for addr in addresses),
                dtype=np.uint64, count=WARP_WIDTH,
            ).astype(_U32)
            if inst.dest is not None and inst.dest != SINK_REGISTER:
                state.write_reg(inst.dest.id, values, mask)
            continue
        if inst.op_class is OpClass.MEM_STORE:
            addresses, values = operands[0], operands[1]
            coalescing.record(transactions_for_addresses(
                addresses, mask, line_bytes))
            for lane in mask.lanes():
                state.memory[int(addresses[lane])] = int(values[lane])
            continue
        if inst.op_class in (OpClass.CONTROL, OpClass.NOP):
            continue

        result = _vector_op(inst.opcode.name, operands[0], operands[1],
                            operands[2])
        if inst.pred_dest is not None:
            flags = state.pred(inst.pred_dest.id).copy()
            active = np.fromiter(
                (lane in mask for lane in range(WARP_WIDTH)),
                dtype=bool, count=WARP_WIDTH,
            )
            flags[active] = result.astype(bool)[active]
            state.predicates[inst.pred_dest.id] = flags
        if inst.dest is not None and inst.dest != SINK_REGISTER:
            state.write_reg(inst.dest.id, result, mask)

    return LaneExecutionResult(
        state=state,
        coalescing=coalescing,
        instructions_executed=executed,
        lanes_executed=lanes_total,
    )
