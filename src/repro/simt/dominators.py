"""Immediate post-dominators of a kernel CFG.

The SIMT stack reconverges diverged lanes at the *immediate
post-dominator* of the branch block — the first block every path from
the branch must pass through.  Computed with the Cooper-Harvey-Kennedy
iterative algorithm on the reverse CFG, with a virtual exit node tying
together all exit blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CompilerError
from ..kernels.cfg import KernelCFG

#: Label of the virtual exit node (never collides: real labels come from
#: user CFGs, and we check).
VIRTUAL_EXIT = "__exit__"


def _reverse_postorder(successors: Dict[str, List[str]],
                       root: str) -> List[str]:
    """Reverse postorder of the graph reachable from ``root``."""
    order: List[str] = []
    visited = set()
    # Iterative DFS with an explicit stack (CFGs can be deep).
    stack: List[tuple] = [(root, iter(successors.get(root, ())))]
    visited.add(root)
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(successors.get(child, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def immediate_post_dominators(cfg: KernelCFG) -> Dict[str, Optional[str]]:
    """Map each block label to its immediate post-dominator label.

    Exit blocks (and blocks whose only post-dominator is the virtual
    exit) map to ``None``.

    Raises:
        CompilerError: if a block cannot reach any exit (lanes entering
            it could never reconverge).
    """
    if VIRTUAL_EXIT in cfg.blocks:
        raise CompilerError(f"block label {VIRTUAL_EXIT!r} is reserved")

    # Post-dominance is dominance on the reverse graph.  A reverse-graph
    # successor of block B is every predecessor of B in the original
    # CFG; the virtual exit's successors are the real exit blocks.
    reverse_succ: Dict[str, List[str]] = {label: [] for label in cfg.blocks}
    reverse_succ[VIRTUAL_EXIT] = [b.label for b in cfg if b.is_exit]
    for block in cfg:
        for edge in block.edges:
            reverse_succ[edge.target].append(block.label)

    order = _reverse_postorder(reverse_succ, VIRTUAL_EXIT)
    unreachable = set(cfg.blocks) - set(order)
    if unreachable:
        raise CompilerError(
            f"blocks cannot reach an exit: {sorted(unreachable)}"
        )
    index = {label: i for i, label in enumerate(order)}

    idom: Dict[str, Optional[str]] = {label: None for label in order}
    idom[VIRTUAL_EXIT] = VIRTUAL_EXIT

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    # Predecessors in the reverse graph = successors in the original CFG
    # (plus the virtual edge for exits).
    reverse_pred: Dict[str, List[str]] = {label: [] for label in order}
    for label, succs in reverse_succ.items():
        for succ in succs:
            if succ in reverse_pred:
                reverse_pred[succ].append(label)

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == VIRTUAL_EXIT:
                continue
            candidates = [p for p in reverse_pred[label]
                          if idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {}
    for label in cfg.blocks:
        dominator = idom.get(label)
        result[label] = None if dominator in (VIRTUAL_EXIT, None) else dominator
    return result
