"""The SIMT reconvergence stack.

Expands a kernel CFG into a *masked trace*: the sequence of
(instruction, active-mask) pairs a warp actually issues, with lanes
diverging at data-dependent branches and reconverging at the branch
block's immediate post-dominator — the classic stack-based SIMT scheme
GPUs (and GPGPU-Sim) implement.

Per-lane branch outcomes are drawn deterministically from the edge
probabilities (seeded by warp, block, and visit number), so divergence
statistics follow the CFG's annotated branch biases while remaining
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import KernelError
from ..isa import Instruction
from ..kernels.cfg import BasicBlock, KernelCFG
from .dominators import immediate_post_dominators
from .mask import FULL_MASK, WARP_WIDTH, ActiveMask


@dataclass(frozen=True)
class MaskedInstruction:
    """One issued instruction with the lanes that execute it."""

    inst: Instruction
    mask: ActiveMask
    block: str


@dataclass
class _StackEntry:
    label: str
    mask: ActiveMask
    reconv: Optional[str]


class SIMTStack:
    """Reconvergence-stack walker over one kernel CFG."""

    def __init__(self, cfg: KernelCFG, warp_id: int = 0, seed: int = 0):
        self.cfg = cfg
        self.warp_id = warp_id
        self.seed = seed
        self.ipdom = immediate_post_dominators(cfg)
        self._visits: Dict[str, int] = {}

    def _lane_taken_mask(self, block: BasicBlock,
                         mask: ActiveMask) -> ActiveMask:
        """Per-lane decision for a two-way branch."""
        probability = block.edges[0].probability
        visit = self._visits.get(block.label, 0)
        rng = random.Random(
            (self.seed * 1_000_003 + self.warp_id) ^ hash((block.label, visit))
        )
        taken_bits = 0
        for lane in mask.lanes():
            if rng.random() < probability:
                taken_bits |= 1 << lane
        return ActiveMask(taken_bits)

    def run(self, max_instructions: int = 200_000) -> List[MaskedInstruction]:
        """Expand the CFG into a masked dynamic trace."""
        trace: List[MaskedInstruction] = []
        stack: List[_StackEntry] = [
            _StackEntry(self.cfg.entry, FULL_MASK, None)
        ]
        while stack:
            top = stack[-1]
            if top.reconv is not None and top.label == top.reconv:
                # These lanes have reached the reconvergence point; the
                # entry below resumes there with the merged mask.
                stack.pop()
                continue
            if not top.mask:
                stack.pop()
                continue
            block = self.cfg.blocks[top.label]
            self._visits[top.label] = self._visits.get(top.label, 0) + 1
            if self._visits[top.label] > block.max_visits * WARP_WIDTH:
                raise KernelError(
                    f"block {top.label!r} visited too often; runaway loop?"
                )
            for inst in block.instructions:
                trace.append(MaskedInstruction(inst, top.mask, top.label))
                if len(trace) >= max_instructions:
                    return trace

            if block.is_exit:
                stack.pop()
                continue
            if len(block.edges) == 1:
                top.label = block.edges[0].target
                continue

            taken = self._lane_taken_mask(block, top.mask)
            taken_mask, fall_mask = top.mask.partition(taken)
            if not fall_mask:
                top.label = block.edges[0].target
                continue
            if not taken_mask:
                top.label = block.edges[1].target
                continue

            # True divergence: lanes split, to reconverge at the
            # immediate post-dominator.
            reconv = self.ipdom[top.label]
            if reconv is None:
                # Paths only meet at kernel exit: run each side to
                # completion independently.
                stack.pop()
                stack.append(_StackEntry(block.edges[1].target, fall_mask,
                                         None))
                stack.append(_StackEntry(block.edges[0].target, taken_mask,
                                         None))
                continue
            top.label = reconv  # the merged mask waits at reconvergence
            stack.append(_StackEntry(block.edges[1].target, fall_mask,
                                     reconv))
            stack.append(_StackEntry(block.edges[0].target, taken_mask,
                                     reconv))
        return trace


def expand_masked_trace(
    cfg: KernelCFG,
    warp_id: int = 0,
    seed: int = 0,
    max_instructions: int = 200_000,
) -> List[MaskedInstruction]:
    """Convenience wrapper: one warp's masked trace of ``cfg``."""
    return SIMTStack(cfg, warp_id=warp_id, seed=seed).run(max_instructions)


def simd_efficiency(trace: List[MaskedInstruction]) -> float:
    """Average fraction of active lanes across a masked trace."""
    if not trace:
        return 0.0
    return sum(item.mask.utilization() for item in trace) / len(trace)
