"""32-lane active masks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import SimulationError

#: Threads per warp (lanes per mask).
WARP_WIDTH = 32

_ALL = (1 << WARP_WIDTH) - 1


@dataclass(frozen=True)
class ActiveMask:
    """An immutable 32-bit lane mask."""

    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= _ALL:
            raise SimulationError(f"mask out of range: {self.bits:#x}")

    # -- constructors ----------------------------------------------------

    @classmethod
    def full(cls) -> "ActiveMask":
        return cls(_ALL)

    @classmethod
    def none(cls) -> "ActiveMask":
        return cls(0)

    @classmethod
    def from_lanes(cls, lanes) -> "ActiveMask":
        bits = 0
        for lane in lanes:
            if not 0 <= lane < WARP_WIDTH:
                raise SimulationError(f"lane {lane} out of range")
            bits |= 1 << lane
        return cls(bits)

    @classmethod
    def from_bools(cls, flags) -> "ActiveMask":
        """Mask from an iterable of 32 booleans (lane 0 first)."""
        flags = list(flags)
        if len(flags) != WARP_WIDTH:
            raise SimulationError(
                f"need exactly {WARP_WIDTH} flags, got {len(flags)}"
            )
        bits = 0
        for lane, flag in enumerate(flags):
            if flag:
                bits |= 1 << lane
        return cls(bits)

    # -- queries -----------------------------------------------------------

    def __bool__(self) -> bool:
        return self.bits != 0

    def __len__(self) -> int:
        return bin(self.bits).count("1")

    @property
    def count(self) -> int:
        return len(self)

    def __contains__(self, lane: int) -> bool:
        return bool(self.bits >> lane & 1)

    def lanes(self) -> Iterator[int]:
        """Active lane indices, ascending."""
        for lane in range(WARP_WIDTH):
            if self.bits >> lane & 1:
                yield lane

    @property
    def is_full(self) -> bool:
        return self.bits == _ALL

    def utilization(self) -> float:
        """Fraction of lanes active (SIMD efficiency of this issue)."""
        return len(self) / WARP_WIDTH

    # -- algebra --------------------------------------------------------------

    def __and__(self, other: "ActiveMask") -> "ActiveMask":
        return ActiveMask(self.bits & other.bits)

    def __or__(self, other: "ActiveMask") -> "ActiveMask":
        return ActiveMask(self.bits | other.bits)

    def __invert__(self) -> "ActiveMask":
        return ActiveMask(~self.bits & _ALL)

    def minus(self, other: "ActiveMask") -> "ActiveMask":
        return ActiveMask(self.bits & ~other.bits & _ALL)

    def partition(self, taken: "ActiveMask") -> Tuple["ActiveMask", "ActiveMask"]:
        """Split into (taken, not-taken) submasks of this mask."""
        taken_part = self & taken
        return taken_part, self.minus(taken_part)

    def __str__(self) -> str:
        return f"{self.bits:08x}"


FULL_MASK = ActiveMask.full()
