"""SIMT lane-level substrate.

The paper's background (SS II) rests on the SIMT execution model: 32
threads execute each warp instruction in lock-step under an *active
mask*, branches may diverge lanes, and a reconvergence stack brings them
back together at the immediate post-dominator.  The scalar timing model
in :mod:`repro.gpu` abstracts a warp-register to one value; this package
supplies the lane-accurate layer underneath it:

* :mod:`repro.simt.mask` — 32-lane active masks;
* :mod:`repro.simt.dominators` — immediate post-dominators of a kernel
  CFG (the reconvergence points);
* :mod:`repro.simt.stack` — the SIMT reconvergence stack, expanding a
  CFG into a *masked trace* with per-lane divergence;
* :mod:`repro.simt.lanes` — lane-wise functional execution with
  predication (numpy-vectorized);
* :mod:`repro.simt.coalescing` — memory-transaction counting for
  per-lane addresses.
"""

from .coalescing import CoalescingStats, transactions_for_addresses
from .dominators import immediate_post_dominators
from .lanes import LaneState, execute_masked_trace
from .mask import FULL_MASK, WARP_WIDTH, ActiveMask
from .stack import MaskedInstruction, SIMTStack, expand_masked_trace

__all__ = [
    "FULL_MASK",
    "WARP_WIDTH",
    "ActiveMask",
    "immediate_post_dominators",
    "MaskedInstruction",
    "SIMTStack",
    "expand_masked_trace",
    "LaneState",
    "execute_masked_trace",
    "CoalescingStats",
    "transactions_for_addresses",
]
