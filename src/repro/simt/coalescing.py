"""Memory-access coalescing analysis.

A warp's 32 lanes issue one address each; the memory system services the
access as one transaction per distinct cache line touched.  Fully
coalesced access = 1 transaction (consecutive 4-byte words in one 128 B
line); worst case = one transaction per active lane.  The transaction
count is the lane-level ground truth behind the scalar memory model's
latency draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


from ..errors import SimulationError
from .mask import ActiveMask


def transactions_for_addresses(addresses, mask: ActiveMask,
                               line_bytes: int = 128) -> int:
    """Distinct ``line_bytes``-sized lines touched by the active lanes."""
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise SimulationError(
            f"line_bytes must be a positive power of two, got {line_bytes}"
        )
    lines = {
        int(addresses[lane]) // line_bytes for lane in mask.lanes()
    }
    return len(lines)


@dataclass
class CoalescingStats:
    """Accumulated transaction counts over a run.

    ``histogram[n]`` counts memory instructions needing ``n``
    transactions; a perfectly coalesced kernel has everything at 1.
    """

    histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, transactions: int) -> None:
        if transactions < 0:
            raise SimulationError("transaction count cannot be negative")
        if transactions == 0:
            return  # fully predicated-off access: no traffic
        self.histogram[transactions] = (
            self.histogram.get(transactions, 0) + 1
        )

    @property
    def accesses(self) -> int:
        return sum(self.histogram.values())

    @property
    def total_transactions(self) -> int:
        return sum(n * count for n, count in self.histogram.items())

    def average_transactions(self) -> float:
        """Mean transactions per memory instruction (1.0 = perfect)."""
        return (self.total_transactions / self.accesses
                if self.accesses else 0.0)

    def fully_coalesced_fraction(self) -> float:
        """Fraction of accesses served by a single transaction."""
        if not self.accesses:
            return 0.0
        return self.histogram.get(1, 0) / self.accesses

    def merge(self, other: "CoalescingStats") -> "CoalescingStats":
        merged = CoalescingStats(histogram=dict(self.histogram))
        for key, value in other.histogram.items():
            merged.histogram[key] = merged.histogram.get(key, 0) + value
        return merged
