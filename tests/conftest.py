"""Shared fixtures: small traces and cached simulation runs.

Timing runs are the expensive part of this suite, so anything reusable
is session-scoped.  Tests that need isolation build their own traces.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.bow_sm import simulate_design
from repro.gpu.reference import execute_reference
from repro.kernels.snippets import btree_snippet
from repro.kernels.suites import get_profile
from repro.kernels.synthetic import (
    SyntheticKernelSpec,
    generate_compiled_trace,
    generate_trace,
)

#: Memory seed shared by the cached runs.
SEED = 11


def small_spec(name: str = "NW", warps: int = 4,
               iterations: int = 5) -> SyntheticKernelSpec:
    """A small, fast benchmark spec for timing tests."""
    return replace(get_profile(name).spec, num_warps=warps,
                   loop_iterations=iterations)


@pytest.fixture(scope="session")
def snippet():
    """The Figure 6 BTREE snippet."""
    return btree_snippet()


@pytest.fixture(scope="session")
def small_trace():
    """A small multi-warp trace (NW profile, 4 warps)."""
    return generate_trace(small_spec())


@pytest.fixture(scope="session")
def small_hinted_trace():
    """The same small trace compiled with IW=3 hints."""
    return generate_compiled_trace(small_spec(), window_size=3)


@pytest.fixture(scope="session")
def reference_result(small_trace):
    """Ground-truth state for the small trace."""
    return execute_reference(small_trace, memory_seed=SEED)


@pytest.fixture(scope="session")
def baseline_run(small_trace):
    return simulate_design("baseline", small_trace, memory_seed=SEED)


@pytest.fixture(scope="session")
def bow_run(small_trace):
    return simulate_design("bow", small_trace, window_size=3, memory_seed=SEED)


@pytest.fixture(scope="session")
def bow_wb_run(small_trace):
    return simulate_design("bow-wb", small_trace, window_size=3,
                           memory_seed=SEED)


@pytest.fixture(scope="session")
def bow_wr_run(small_hinted_trace):
    return simulate_design("bow-wr", small_hinted_trace, window_size=3,
                           memory_seed=SEED)
