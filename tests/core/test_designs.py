"""Tests for the declarative design registry (:mod:`repro.core.designs`)."""

import pytest

from repro.core.bow_sm import DESIGNS, simulate_design
from repro.core.designs import (
    DesignSpec,
    design_names,
    design_specs,
    get_design,
    known_designs,
    register_design,
    temporary_design,
    unregister_design,
)
from repro.errors import ExperimentError, SimulationError
from repro.experiments.runner import (
    design_spec,
    effective_window,
    validate_design,
)
from repro.gpu.collector import BaselineCollectorPool
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace

PAPER_DESIGNS = ("baseline", "bow", "bow-wb", "bow-wr", "bow-wr-half", "rfc")


def _spec(name="test-design"):
    return DesignSpec(
        name=name,
        description="a throwaway design for tests",
        provider=lambda eng, iw: BaselineCollectorPool(
            eng, eng.config.num_operand_collectors),
    )


class TestRegistryContents:
    def test_paper_designs_registered(self):
        assert design_names() == tuple(sorted(PAPER_DESIGNS))

    def test_metadata_bits(self):
        assert get_design("baseline").windowless
        assert get_design("rfc").windowless
        assert get_design("bow-wr").hinted
        assert get_design("bow-wr-half").hinted
        for name in ("bow", "bow-wb"):
            spec = get_design(name)
            assert not spec.hinted and not spec.windowless, name

    def test_specs_sorted_and_described(self):
        specs = design_specs()
        assert [s.name for s in specs] == list(design_names())
        assert all(s.description for s in specs)

    def test_unknown_design_is_keyerror(self):
        with pytest.raises(KeyError):
            get_design("nope")

    def test_known_designs_joins_names(self):
        assert known_designs() == ", ".join(design_names())

    def test_designs_compat_view(self):
        # The legacy mapping exposes exactly the BOW-config designs
        # (rfc has no BOWConfig and is absent).
        assert set(DESIGNS) == set(PAPER_DESIGNS) - {"rfc"}
        assert DESIGNS["bow"](3).window_size == 3
        assert not DESIGNS["baseline"](3).enabled


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(SimulationError):
            register_design(_spec("baseline"))

    def test_temporary_design_round_trip(self):
        name = "test-temp-design"
        assert name not in design_names()
        with temporary_design(_spec(name)) as spec:
            assert get_design(name) is spec
            assert name in known_designs()
        assert name not in design_names()

    def test_temporary_design_unregisters_on_error(self):
        name = "test-temp-design"
        with pytest.raises(RuntimeError):
            with temporary_design(_spec(name)):
                raise RuntimeError("boom")
        assert name not in design_names()

    def test_unregister_missing_is_noop(self):
        unregister_design("never-registered")

    def test_registered_design_is_simulatable(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(warp_id=0,
                      instructions=parse_program("mov.u32 $r1, 0x2"))
        ])
        with temporary_design(_spec("test-run-design")):
            result = simulate_design("test-run-design", trace)
        assert result.register_image[(0, 1)] == 2


class TestErrorParity:
    """Every entry layer reports unknown designs with one message."""

    def test_simulate_design_message(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(warp_id=0, instructions=parse_program("nop"))
        ])
        with pytest.raises(SimulationError, match="unknown design 'nope'"):
            simulate_design("nope", trace)

    def test_runner_message(self):
        with pytest.raises(ExperimentError,
                           match="unknown design 'nope'") as excinfo:
            validate_design("nope")
        assert known_designs() in str(excinfo.value)

    def test_runner_metadata_derives_from_registry(self):
        assert design_spec("bow-wr").hinted
        assert effective_window("baseline", 5) == 0
        assert effective_window("rfc", 5) == 0
        assert effective_window("bow", 5) == 5
