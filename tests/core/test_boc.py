"""Tests for the Bypassing Operand Collector and its writeback policies.

Exercised through small hand-written traces run on the full engine: the
BOC's observable contract is RF traffic, forwarding counts, and final
architectural state.
"""

import pytest

from repro.config import BOWConfig, WritebackPolicy, baseline_config
from repro.core.boc import BOWCollectors
from repro.core.bow_sm import simulate_bow
from repro.errors import SimulationError
from repro.gpu.sm import SMEngine
from repro.isa import WritebackHint, parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


def run(text, policy, window_size=3, capacity=None):
    bow = BOWConfig(window_size=window_size, writeback=policy,
                    capacity_entries=capacity)
    return simulate_bow(single_warp(text), bow=bow)


CHAIN = """
    mov.u32 $r1, 0x1
    add.u32 $r1, $r1, $r1
    add.u32 $r1, $r1, $r1
    st.global.u32 [$r2], $r1
"""


class TestForwarding:
    def test_chain_reads_forwarded(self):
        result = run(CHAIN, WritebackPolicy.WRITE_THROUGH)
        counters = result.counters
        # $r1 reads at instructions 1, 2 (x2 each... add reads it twice)
        # and the store's value read all hit the BOC.
        assert counters.bypassed_reads == 5
        assert counters.rf_reads == 1  # only $r2 (store address)

    def test_forwarded_values_correct(self):
        result = run(CHAIN, WritebackPolicy.WRITE_THROUGH)
        assert result.register_image[(0, 1)] == 4
        stored = list(result.memory_image.values())
        assert stored == [4]

    def test_no_forwarding_beyond_window(self):
        text = """
            mov.u32 $r1, 0x1
            nop
            nop
            nop
            add.u32 $r2, $r1, $r1
        """
        result = run(text, WritebackPolicy.WRITE_THROUGH, window_size=3)
        # The value itself comes from the RF (one physical read); only
        # the same-instruction duplicate slot shares the fetch.
        assert result.counters.rf_reads == 1
        assert result.counters.bypassed_reads == 1
        assert result.register_image[(0, 2)] == 2  # still correct, via RF

    def test_read_miss_deposits_for_reuse(self):
        text = """
            add.u32 $r2, $r1, $r1
            add.u32 $r3, $r1, $r2
        """
        result = run(text, WritebackPolicy.WRITE_THROUGH)
        # First $r1 read misses (RF), second read of $r1 forwards.
        counters = result.counters
        assert counters.rf_reads == 1
        assert counters.bypassed_reads == 3


class TestWriteThrough:
    def test_every_write_reaches_rf(self):
        counters = run(CHAIN, WritebackPolicy.WRITE_THROUGH).counters
        assert counters.rf_writes == 3
        assert counters.bypassed_writes == 0

    def test_boc_also_written(self):
        counters = run(CHAIN, WritebackPolicy.WRITE_THROUGH).counters
        assert counters.boc_writes >= 3


class TestWriteBack:
    def test_consolidates_overwrites(self):
        counters = run(CHAIN, WritebackPolicy.WRITE_BACK).counters
        # $r1 written 3 times; the first two are overwritten in-window.
        assert counters.bypassed_writes == 2
        assert counters.rf_writes == 1

    def test_final_value_flushed(self):
        result = run(CHAIN, WritebackPolicy.WRITE_BACK)
        assert result.register_image[(0, 1)] == 4

    def test_lapsed_value_written_back(self):
        text = """
            mov.u32 $r1, 0x7
            nop
            nop
            nop
            add.u32 $r2, $r1, $r1
        """
        result = run(text, WritebackPolicy.WRITE_BACK)
        counters = result.counters
        assert counters.rf_writes == 2  # both values reach the RF
        assert result.register_image[(0, 2)] == 14


class TestCompilerHints:
    def _hinted(self, text, hints):
        instructions = parse_program(text)
        hinted = []
        for inst, hint in zip(instructions, hints):
            hinted.append(inst.with_hint(hint) if hint else inst)
        return KernelTrace(name="t", warps=[WarpTrace(0, hinted)])

    def test_oc_only_write_never_reaches_rf(self):
        trace = self._hinted("""
            mov.u32 $r1, 0x3
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r4], $r2
        """, [WritebackHint.OC_ONLY, WritebackHint.OC_ONLY, None])
        bow = BOWConfig(writeback=WritebackPolicy.COMPILER)
        result = simulate_bow(trace, bow=bow)
        assert result.counters.rf_writes == 0
        assert result.counters.bypassed_writes == 2
        assert list(result.memory_image.values()) == [6]

    def test_rf_only_write_skips_boc(self):
        trace = self._hinted("""
            mov.u32 $r1, 0x3
            st.global.u32 [$r4], $r5
        """, [WritebackHint.RF_ONLY, None])
        bow = BOWConfig(writeback=WritebackPolicy.COMPILER)
        result = simulate_bow(trace, bow=bow)
        counters = result.counters
        assert counters.rf_writes == 1
        # The only BOC fills are the store's two read misses; the
        # RF-only destination was never deposited.
        assert counters.boc_writes == 2

    def test_rf_only_value_still_readable(self):
        # Dynamically a read can land inside the window even though the
        # compiler proved it does not (cross-block conservatism): the
        # read falls back to the RF and stays correct.
        trace = self._hinted("""
            mov.u32 $r1, 0x9
            add.u32 $r2, $r1, $r1
        """, [WritebackHint.RF_ONLY, None])
        bow = BOWConfig(writeback=WritebackPolicy.COMPILER)
        result = simulate_bow(trace, bow=bow)
        assert result.register_image[(0, 2)] == 18

    def test_both_written_on_slide_out(self):
        # $r1 is forwarded to the add at distance 1 AND read again far
        # beyond the window: the BOTH hint must land it in the RF.
        trace = self._hinted("""
            mov.u32 $r1, 0x2
            add.u32 $r2, $r1, $r1
            nop
            nop
            nop
            add.u32 $r3, $r1, $r1
            st.global.u32 [$r9], $r3
        """, [WritebackHint.BOTH, WritebackHint.OC_ONLY, None, None, None,
              WritebackHint.OC_ONLY, None])
        bow = BOWConfig(writeback=WritebackPolicy.COMPILER)
        result = simulate_bow(trace, bow=bow)
        assert list(result.memory_image.values()) == [4]  # $r1 came from RF
        assert result.counters.rf_writes == 1  # only $r1's BOTH write


class TestCapacity:
    def test_eviction_under_pressure(self):
        # Capacity 2 with many distinct registers in the window forces
        # FIFO evictions.
        text = """
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            mov.u32 $r3, 0x3
            add.u32 $r4, $r1, $r2
        """
        result = run(text, WritebackPolicy.WRITE_BACK, capacity=2)
        assert result.counters.boc_evictions > 0
        assert result.register_image[(0, 4)] == 3  # still correct

    def test_dirty_eviction_writes_back(self):
        text = """
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            mov.u32 $r3, 0x3
        """
        result = run(text, WritebackPolicy.WRITE_BACK, capacity=1)
        counters = result.counters
        assert counters.eviction_writebacks > 0
        # All three values reach the RF despite the tiny buffer.
        assert result.register_image[(0, 1)] == 1
        assert result.register_image[(0, 2)] == 2
        assert result.register_image[(0, 3)] == 3

    def test_full_capacity_no_evictions(self):
        counters = run(CHAIN, WritebackPolicy.WRITE_BACK).counters
        assert counters.boc_evictions == 0


class TestOccupancySampling:
    def test_histogram_collected(self):
        bow = BOWConfig(writeback=WritebackPolicy.WRITE_BACK)
        holder = {}

        def factory(engine):
            provider = BOWCollectors(engine, bow)
            holder["p"] = provider
            return provider

        engine = SMEngine(single_warp(CHAIN), provider_factory=factory)
        engine.run()
        histogram = holder["p"].occupancy_histogram
        assert sum(histogram.values()) > 0
        assert max(histogram) <= bow.effective_capacity


class TestGuards:
    def test_disabled_config_rejected(self):
        engine = SMEngine(single_warp("nop"))
        with pytest.raises(SimulationError):
            BOWCollectors(engine, baseline_config())
