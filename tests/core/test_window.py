"""Tests for sliding-window bypass analyses (Figure 3 / Table I logic)."""

import pytest

from repro.core.window import (
    read_bypass_counts,
    table1_write_counts,
    write_bypass_opportunity_counts,
    writeback_eliminated_counts,
)
from repro.errors import CompilerError
from repro.isa import parse_program


def program(text):
    return parse_program(text)


class TestReadBypass:
    def test_counts_pairs(self):
        bypassed, total = read_bypass_counts(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """), 2)
        assert (bypassed, total) == (2, 2)

    def test_read_after_read_bypasses(self):
        # A prior read deposits the value in the collector too.
        bypassed, total = read_bypass_counts(program("""
            add.u32 $r2, $r1, $r3
            add.u32 $r4, $r1, $r5
        """), 2)
        assert bypassed == 1  # the second read of $r1

    def test_sliding_window_chains(self):
        # Paper: with IW=2 a value reused in three consecutive
        # instructions keeps being bypassed (the window slides).
        bypassed, total = read_bypass_counts(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r6
            add.u32 $r3, $r1, $r7
            add.u32 $r4, $r1, $r8
        """), 2)
        assert bypassed == 3

    def test_window_boundary_exact(self):
        trace = program("""
            mov.u32 $r1, 0x1
            nop
            nop
            add.u32 $r2, $r1, $r1
        """)
        # Distance 3 > IW-1 for the first read; the same-instruction
        # duplicate (distance 0) is always within the window.
        assert read_bypass_counts(trace, 3)[0] == 1
        assert read_bypass_counts(trace, 4)[0] == 2

    def test_sink_write_does_not_refresh(self):
        trace = program("""
            set.ne.s32.s32 $p0/$o127, $r1, $r2
            add.u32 $r3, $r1, $r2
        """)
        bypassed, total = read_bypass_counts(trace, 2)
        assert bypassed == 2  # from the reads, not the sink write

    def test_rejects_bad_window(self):
        with pytest.raises(CompilerError):
            read_bypass_counts([], 0)


class TestWriteOpportunity:
    def test_transient_write_eliminable(self):
        eliminated, total = write_bypass_opportunity_counts(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """), 3)
        assert (eliminated, total) == (2, 2)

    def test_long_lived_write_not_eliminable(self):
        eliminated, total = write_bypass_opportunity_counts(program("""
            mov.u32 $r1, 0x1
            nop
            nop
            nop
            add.u32 $r2, $r1, $r1
        """), 3)
        assert eliminated == 1  # only $r2's (dead) write

    def test_live_out_not_eliminable(self):
        eliminated, total = write_bypass_opportunity_counts(
            program("mov.u32 $r1, 0x1"), 3, live_out=frozenset({1})
        )
        assert (eliminated, total) == (0, 1)


class TestWritebackPolicy:
    def test_consolidation_within_window(self):
        eliminated, total = writeback_eliminated_counts(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
        """), 3)
        assert (eliminated, total) == (1, 2)

    def test_lapse_prevents_consolidation(self):
        eliminated, total = writeback_eliminated_counts(program("""
            mov.u32 $r1, 0x1
            nop
            nop
            nop
            mov.u32 $r1, 0x2
        """), 3)
        assert eliminated == 0

    def test_reads_extend_residency(self):
        # Accesses at 0,1,2,3: every gap < 3, so the rewrite at 3
        # consolidates the write at 0 despite distance 3.
        eliminated, total = writeback_eliminated_counts(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r6
            add.u32 $r3, $r1, $r7
            mov.u32 $r1, 0x2
        """), 3)
        assert eliminated == 1

    def test_wb_never_beats_opportunity(self):
        text = """
            mov.u32 $r1, 0x1
            add.u32 $r1, $r1, $r2
            add.u32 $r3, $r1, $r1
            mov.u32 $r4, 0x2
            add.u32 $r4, $r4, $r3
            st.global.u32 [$r5], $r4
        """
        for iw in (2, 3, 4):
            wb, _ = writeback_eliminated_counts(program(text), iw)
            opportunity, _ = write_bypass_opportunity_counts(program(text), iw)
            assert wb <= opportunity


class TestTable1:
    """Pin the Table I computation to the paper's worked example."""

    def test_write_through_counts(self, snippet):
        counts = table1_write_counts(snippet, 3)["write-through"]
        # Computed from Figure 6 as printed: r0=3, r1=4, r2=3, r3=1, r4=1.
        # (The paper's table omits the $r4 write and counts $r2 as 2.)
        assert counts == {0: 3, 1: 4, 2: 3, 3: 1, 4: 1}

    def test_write_back_counts(self, snippet):
        counts = table1_write_counts(snippet, 3)["write-back"]
        assert counts[0] == 1  # paper: 1
        assert counts[1] == 2  # paper: 2
        assert counts[3] == 1  # paper: 1

    def test_compiler_counts_match_paper_exactly(self, snippet):
        counts = table1_write_counts(snippet, 3)["compiler"]
        assert counts == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert sum(counts.values()) == 2  # the paper's total

    def test_policies_strictly_improve(self, snippet):
        counts = table1_write_counts(snippet, 3)
        wt = sum(counts["write-through"].values())
        wb = sum(counts["write-back"].values())
        wr = sum(counts["compiler"].values())
        assert wt > wb > wr

    def test_sink_not_counted(self, snippet):
        counts = table1_write_counts(snippet, 3)
        from repro.isa.registers import SINK_REGISTER

        assert SINK_REGISTER.id not in counts["write-through"]
