"""Tests for the register-file-cache comparison design."""


from repro.core.rfc import RFC_ENTRIES_PER_WARP, simulate_rfc
from repro.gpu.reference import execute_reference
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


CHAIN = """
    mov.u32 $r1, 0x1
    add.u32 $r1, $r1, $r1
    add.u32 $r2, $r1, $r1
    st.global.u32 [$r3], $r2
"""


class TestRfcBehaviour:
    def test_paper_configuration(self):
        assert RFC_ENTRIES_PER_WARP == 6
        # 6 warp-registers x 128 B x 32 warps = 24 KB (paper SS V-A).
        assert RFC_ENTRIES_PER_WARP * 128 * 32 == 24 * 1024

    def test_hits_bypass_banks(self):
        result = simulate_rfc(single_warp(CHAIN))
        assert result.counters.bypassed_reads > 0
        assert result.counters.rf_reads < 6

    def test_results_correct(self):
        trace = single_warp(CHAIN)
        reference = execute_reference(trace)
        result = simulate_rfc(trace)
        assert result.memory_image == reference.memory

    def test_dirty_values_flushed_at_drain(self):
        trace = single_warp(CHAIN)
        reference = execute_reference(trace)
        result = simulate_rfc(trace)
        for key, value in reference.registers.items():
            assert result.register_image[key] == value

    def test_eviction_writes_back(self):
        # Write more registers than the cache holds.
        lines = [f"mov.u32 $r{i}, 0x{i}" for i in range(1, 10)]
        result = simulate_rfc(single_warp("\n".join(lines)))
        assert result.counters.boc_evictions > 0
        for i in range(1, 10):
            assert result.register_image[(0, i)] == i

    def test_consolidates_overwrites(self):
        result = simulate_rfc(single_warp("""
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
        """))
        assert result.counters.bypassed_writes == 1
        assert result.register_image[(0, 1)] == 2

    def test_rfc_caches_writes_not_read_misses(self):
        # A register only read (never written) misses every time.
        result = simulate_rfc(single_warp("""
            add.u32 $r2, $r1, $r9
            nop
            add.u32 $r3, $r1, $r9
        """))
        # $r1 and $r9 miss twice each: 4 physical reads.
        assert result.counters.rf_reads == 4

    def test_smaller_cache_evicts_more(self):
        lines = "\n".join(f"mov.u32 $r{i}, 0x{i}" for i in range(1, 12))
        small = simulate_rfc(single_warp(lines), entries_per_warp=2)
        large = simulate_rfc(single_warp(lines), entries_per_warp=8)
        assert small.counters.boc_evictions > large.counters.boc_evictions
