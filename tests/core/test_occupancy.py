"""Tests for collector occupancy analyses (Figures 8/9)."""

import pytest

from repro.config import bow_wr_config
from repro.core.occupancy import (
    OccupancySample,
    boc_occupancy_histogram,
    source_operand_histogram,
)
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


class TestSourceOperandHistogram:
    def test_counts_by_operand_count(self):
        trace = single_warp("""
            nop
            mov.u32 $r1, $r9
            add.u32 $r2, $r1, $r1
            mad.u32 $r3, $r1, $r2, $r1
        """)
        histogram = source_operand_histogram(trace)
        assert histogram[0] == pytest.approx(0.25)
        assert histogram[1] == pytest.approx(0.25)
        assert histogram[2] == pytest.approx(0.25)
        assert histogram[3] == pytest.approx(0.25)

    def test_sums_to_one(self, small_trace):
        histogram = source_operand_histogram(small_trace)
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_empty_trace(self):
        histogram = source_operand_histogram(KernelTrace(name="e"))
        assert all(v == 0.0 for v in histogram.values())


class TestBocOccupancy:
    def test_sample_fields(self, small_trace):
        sample = boc_occupancy_histogram(small_trace, memory_seed=11)
        assert sample.capacity == bow_wr_config().effective_capacity
        assert 0 < sample.max_observed <= sample.capacity
        assert sum(sample.histogram.values()) == pytest.approx(1.0)

    def test_never_exceeds_capacity(self, small_trace):
        sample = boc_occupancy_histogram(small_trace, memory_seed=11)
        assert max(sample.histogram) <= sample.capacity

    def test_fraction_above(self):
        sample = OccupancySample(
            histogram={2: 0.5, 5: 0.3, 8: 0.2}, max_observed=8, capacity=12
        )
        assert sample.fraction_above(6) == pytest.approx(0.2)
        assert sample.fraction_above(1) == pytest.approx(1.0)
        assert sample.fraction_above(8) == 0.0

    def test_half_capacity_rarely_exceeded(self, small_trace):
        # The Figure 9 observation that justifies halving the storage.
        sample = boc_occupancy_histogram(small_trace, memory_seed=11)
        assert sample.fraction_above(sample.capacity // 2) < 0.25
