"""Tests for the design registry and end-to-end BOW simulations."""

import pytest

from repro.core.bow_sm import DESIGNS, simulate_bow, simulate_design
from repro.errors import SimulationError


class TestRegistry:
    def test_known_designs(self):
        assert set(DESIGNS) == {
            "baseline", "bow", "bow-wb", "bow-wr", "bow-wr-half",
        }

    def test_unknown_design_raises(self, small_trace):
        with pytest.raises(SimulationError):
            simulate_design("warp-drive", small_trace)

    def test_unknown_design_suppresses_keyerror_context(self, small_trace):
        # Regression: the registry lookup's KeyError must not surface as
        # "During handling of the above exception..." in user tracebacks.
        with pytest.raises(SimulationError) as excinfo:
            simulate_design("warp-drive", small_trace)
        assert excinfo.value.__suppress_context__
        assert "known:" in str(excinfo.value)

    def test_baseline_through_registry(self, small_trace, baseline_run):
        result = simulate_design("baseline", small_trace, memory_seed=11)
        assert result.counters.cycles == baseline_run.counters.cycles


class TestDesignBehaviour:
    def test_bow_bypasses_reads(self, bow_run):
        assert bow_run.counters.bypassed_reads > 0
        assert bow_run.counters.read_bypass_rate > 0.3

    def test_bow_write_through_never_bypasses_writes(self, bow_run):
        assert bow_run.counters.bypassed_writes == 0

    def test_bow_wb_bypasses_writes(self, bow_wb_run):
        assert bow_wb_run.counters.bypassed_writes > 0

    def test_bow_wr_bypasses_most_writes(self, bow_wb_run, bow_wr_run):
        # Compiler hints save at least as many RF writes as the
        # hardware-only write-back policy (Table I's trend).
        assert (bow_wr_run.counters.rf_writes
                <= bow_wb_run.counters.rf_writes)

    def test_all_designs_improve_ipc(self, baseline_run, bow_run,
                                     bow_wb_run, bow_wr_run):
        for run in (bow_run, bow_wb_run, bow_wr_run):
            assert run.ipc > baseline_run.ipc

    def test_rf_reads_reduced(self, baseline_run, bow_run):
        assert bow_run.counters.rf_reads < baseline_run.counters.rf_reads

    def test_same_instruction_count(self, baseline_run, bow_run,
                                    bow_wb_run, bow_wr_run):
        target = baseline_run.counters.instructions
        for run in (bow_run, bow_wb_run, bow_wr_run):
            assert run.counters.instructions == target

    def test_oc_residency_reduced(self, baseline_run, bow_run):
        base = (baseline_run.counters.oc_wait_cycles
                / baseline_run.counters.instructions)
        bow = (bow_run.counters.oc_wait_cycles
               / bow_run.counters.instructions)
        assert bow < base

    def test_memory_images_identical(self, reference_result, baseline_run,
                                     bow_run, bow_wb_run):
        for run in (baseline_run, bow_run, bow_wb_run):
            assert run.memory_image == reference_result.memory

    def test_bow_wr_memory_matches_its_reference(self, small_hinted_trace,
                                                 bow_wr_run):
        from repro.gpu.reference import execute_reference

        reference = execute_reference(small_hinted_trace, memory_seed=11)
        assert bow_wr_run.memory_image == reference.memory

    def test_rf_state_complete_for_flushing_designs(self, reference_result,
                                                    baseline_run, bow_run,
                                                    bow_wb_run):
        # Baseline and write-through write every value to the RF;
        # write-back flushes at drain: all three match the reference.
        for run in (baseline_run, bow_run, bow_wb_run):
            for key, value in reference_result.registers.items():
                assert run.register_image[key] == value


class TestWindowSweep:
    def test_counter_identity(self, bow_run, small_trace):
        counters = bow_run.counters
        assert counters.total_reads == small_trace.total_reads
        # Sink-register writes never generate a value; every other dest
        # is either written or bypassed.
        assert counters.total_writes <= small_trace.total_writes

    def test_bigger_window_bypasses_more(self, small_trace):
        from repro.config import bow_config

        r5 = simulate_bow(small_trace, bow=bow_config(5), memory_seed=11)
        assert (r5.counters.read_bypass_rate
                >= simulate_bow(small_trace, bow=bow_config(2),
                                memory_seed=11).counters.read_bypass_rate)
