"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BTREE" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "reads bypassed" in out

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["run", "DOOM", "--warps", "2", "--scale", "0.1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_design_fails_cleanly(self, capsys):
        code = main(["run", "BFS", "--design", "magic",
                     "--warps", "2", "--scale", "0.1"])
        assert code == 1


class TestRunSeed:
    def test_seed_flag_accepted(self, capsys):
        code = main(["run", "BFS", "--warps", "2", "--scale", "0.1",
                     "--seed", "13"])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_seed_threaded_into_scale(self, monkeypatch, capsys):
        # Regression: `run` used to drop the memory seed on the floor and
        # always simulate with the RunScale default.
        import repro.experiments.runner as runner

        seeds = []
        real = runner.run_design

        def spy(benchmark, design, window_size=3, scale=None):
            seeds.append(scale.memory_seed)
            return real(benchmark, design, window_size=window_size,
                        scale=scale)

        monkeypatch.setattr(runner, "run_design", spy)
        assert main(["run", "BFS", "--warps", "2", "--scale", "0.1",
                     "--seed", "13"]) == 0
        assert seeds and all(seed == 13 for seed in seeds)


class TestSweep:
    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    def test_cold_then_warm(self, tmp_path, capsys):
        from repro.experiments.runner import clear_cache

        argv = ["sweep", "BFS", "NW", "--designs", "baseline,bow",
                "--warps", "2", "--scale", "0.1",
                "--cache-dir", str(tmp_path / "runs")]
        assert main(argv) == 0
        assert "4 simulated" in capsys.readouterr().out
        clear_cache()  # a second process would start with an empty memo
        assert main(argv + ["--expect-warm"]) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out
        assert "4 from disk cache" in out

    def test_expect_warm_fails_on_cold_cache(self, tmp_path, capsys):
        code = main(["sweep", "BFS", "--designs", "baseline",
                     "--warps", "2", "--scale", "0.1",
                     "--cache-dir", str(tmp_path / "runs"),
                     "--expect-warm"])
        assert code == 1
        assert "expected a warm cache" in capsys.readouterr().err

    def test_no_cache_leaves_disk_untouched(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
        assert main(["sweep", "BFS", "--designs", "baseline",
                     "--warps", "2", "--scale", "0.1", "--no-cache"]) == 0
        assert not (tmp_path / "unused").exists()

    def test_unknown_design_fails_cleanly(self, capsys):
        code = main(["sweep", "BFS", "--designs", "magic",
                     "--warps", "2", "--scale", "0.1", "--no-cache"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_windows_fails_cleanly(self, capsys):
        code = main(["sweep", "BFS", "--windows", "abc",
                     "--warps", "2", "--scale", "0.1", "--no-cache"])
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err


class TestExperiment:
    def test_static_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["experiment", "fig99"]) == 1


class TestAblation:
    def test_rf_size_ablation(self, capsys):
        assert main(["ablation", "rf-size"]) == 0
        out = capsys.readouterr().out
        assert "transient" in out

    def test_unknown_ablation_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["ablation", "quantum"])


class TestCompile:
    def test_compile_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.asm"
        source.write_text(
            "mov.u32 $r1, 0x1\n"
            "add.u32 $r2, $r1, $r1\n"
            "st.global.u32 [$r3], $r2\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "oc-only" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.asm"]) == 1

    def test_parse_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.asm"
        source.write_text("frobnicate $r1\n")
        assert main(["compile", str(source)]) == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
