"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BTREE" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "reads bypassed" in out

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["run", "DOOM", "--warps", "2", "--scale", "0.1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_design_fails_cleanly(self, capsys):
        code = main(["run", "BFS", "--design", "magic",
                     "--warps", "2", "--scale", "0.1"])
        assert code == 1


class TestExperiment:
    def test_static_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["experiment", "fig99"]) == 1


class TestAblation:
    def test_rf_size_ablation(self, capsys):
        assert main(["ablation", "rf-size"]) == 0
        out = capsys.readouterr().out
        assert "transient" in out

    def test_unknown_ablation_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["ablation", "quantum"])


class TestCompile:
    def test_compile_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.asm"
        source.write_text(
            "mov.u32 $r1, 0x1\n"
            "add.u32 $r2, $r1, $r1\n"
            "st.global.u32 [$r3], $r2\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "oc-only" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.asm"]) == 1

    def test_parse_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.asm"
        source.write_text("frobnicate $r1\n")
        assert main(["compile", str(source)]) == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
