"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BTREE" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "reads bypassed" in out

    def test_run_reports_fast_forwarded_cycles(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1"])
        assert code == 0
        assert "fast-forwarded" in capsys.readouterr().out

    def test_no_fast_forward_flag(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1",
                     "--no-fast-forward"])
        assert code == 0
        out = capsys.readouterr().out
        # The reference path ticks every cycle, so nothing is jumped.
        assert "fast-forwarded    0 cycles" in out

    def test_no_fast_forward_matches_default(self, capsys):
        assert main(["run", "BFS", "--warps", "4", "--scale", "0.1"]) == 0
        default = capsys.readouterr().out
        assert main(["run", "BFS", "--warps", "4", "--scale", "0.1",
                     "--no-fast-forward"]) == 0
        reference = capsys.readouterr().out
        # Identical report except the fast-forwarded line itself.
        scrub = lambda text: [line for line in text.splitlines()
                              if "fast-forwarded" not in line]
        assert scrub(default) == scrub(reference)

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["run", "DOOM", "--warps", "2", "--scale", "0.1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_design_fails_cleanly(self, capsys):
        code = main(["run", "BFS", "--design", "magic",
                     "--warps", "2", "--scale", "0.1"])
        assert code == 1


class TestRunDevice:
    def test_run_sms_prints_device_ipc(self, capsys):
        code = main(["run", "BFS", "--warps", "8", "--scale", "0.1",
                     "--sms", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 SMs" in out
        assert "device IPC" in out

    def test_run_sms_jobs_accepted(self, capsys):
        code = main(["run", "BFS", "--warps", "8", "--scale", "0.1",
                     "--sms", "2", "--jobs", "2"])
        assert code == 0
        assert "device IPC" in capsys.readouterr().out

    def test_run_single_sm_unchanged(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1",
                     "--sms", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "device IPC" not in out
        assert "IPC" in out

    def test_run_zero_sms_fails_cleanly(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1",
                     "--sms", "0"])
        assert code == 1
        assert "num_sms" in capsys.readouterr().err

    def test_run_negative_sms_fails_cleanly(self, capsys):
        code = main(["run", "BFS", "--warps", "4", "--scale", "0.1",
                     "--sms", "-2"])
        assert code == 1
        assert "num_sms" in capsys.readouterr().err

    def test_list_designs_show_sms_default(self, capsys):
        assert main(["list", "--designs"]) == 0
        out = capsys.readouterr().out
        assert "sms=1" in out
        assert "--sms" in out  # the discoverability hint


class TestRunSeed:
    def test_seed_flag_accepted(self, capsys):
        code = main(["run", "BFS", "--warps", "2", "--scale", "0.1",
                     "--seed", "13"])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_seed_threaded_into_scale(self, monkeypatch, capsys):
        # Regression: `run` used to drop the memory seed on the floor and
        # always simulate with the RunScale default.
        import repro.experiments.runner as runner

        seeds = []
        real = runner.run_design

        def spy(benchmark, design, window_size=3, scale=None):
            seeds.append(scale.memory_seed)
            return real(benchmark, design, window_size=window_size,
                        scale=scale)

        monkeypatch.setattr(runner, "run_design", spy)
        assert main(["run", "BFS", "--warps", "2", "--scale", "0.1",
                     "--seed", "13"]) == 0
        assert seeds and all(seed == 13 for seed in seeds)


class TestSweep:
    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    def test_cold_then_warm(self, tmp_path, capsys):
        from repro.experiments.runner import clear_cache

        argv = ["sweep", "BFS", "NW", "--designs", "baseline,bow",
                "--warps", "2", "--scale", "0.1",
                "--cache-dir", str(tmp_path / "runs")]
        assert main(argv) == 0
        assert "4 simulated" in capsys.readouterr().out
        clear_cache()  # a second process would start with an empty memo
        assert main(argv + ["--expect-warm"]) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out
        assert "4 from disk cache" in out

    def test_expect_warm_fails_on_cold_cache(self, tmp_path, capsys):
        code = main(["sweep", "BFS", "--designs", "baseline",
                     "--warps", "2", "--scale", "0.1",
                     "--cache-dir", str(tmp_path / "runs"),
                     "--expect-warm"])
        assert code == 1
        assert "expected a warm cache" in capsys.readouterr().err

    def test_no_cache_leaves_disk_untouched(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
        assert main(["sweep", "BFS", "--designs", "baseline",
                     "--warps", "2", "--scale", "0.1", "--no-cache"]) == 0
        assert not (tmp_path / "unused").exists()

    def test_unknown_design_fails_cleanly(self, capsys):
        code = main(["sweep", "BFS", "--designs", "magic",
                     "--warps", "2", "--scale", "0.1", "--no-cache"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_windows_fails_cleanly(self, capsys):
        code = main(["sweep", "BFS", "--windows", "abc",
                     "--warps", "2", "--scale", "0.1", "--no-cache"])
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_sms_reports_device_points(self, capsys):
        code = main(["sweep", "BFS", "--designs", "bow",
                     "--warps", "8", "--scale", "0.1", "--no-cache",
                     "--sms", "2"])
        assert code == 0
        assert "2 SMs" in capsys.readouterr().out

    def test_sweep_zero_sms_fails_cleanly(self, capsys):
        code = main(["sweep", "BFS", "--designs", "bow",
                     "--warps", "8", "--scale", "0.1", "--no-cache",
                     "--sms", "0"])
        assert code == 1
        assert "num_sms" in capsys.readouterr().err

    def test_device_and_single_sm_cached_separately(self, tmp_path, capsys):
        argv = ["sweep", "BFS", "--designs", "bow", "--warps", "8",
                "--scale", "0.1", "--cache-dir", str(tmp_path / "runs")]
        assert main(argv + ["--sms", "2"]) == 0
        assert "1 simulated" in capsys.readouterr().out
        # The single-SM point is a different key: it must simulate too.
        assert main(argv) == 0
        assert "1 simulated" in capsys.readouterr().out


class TestSweepTelemetry:
    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    def test_telemetry_written_and_valid(self, tmp_path, capsys):
        import json

        from repro.observe.schema import validate_telemetry_record

        path = tmp_path / "telemetry.jsonl"
        assert main(["sweep", "BFS", "--designs", "baseline,bow",
                     "--warps", "2", "--scale", "0.1", "--no-cache",
                     "--telemetry", str(path)]) == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        for record in records:
            validate_telemetry_record(record)
        assert [r["type"] for r in records] == [
            "start", "point", "point", "summary",
        ]
        assert "telemetry: 4 record(s)" in capsys.readouterr().err


class TestTrace:
    def test_trace_prints_rollup(self, capsys):
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        assert "issue" in out
        assert "boc_hit" in out  # bow is the default design

    def test_trace_exports_chrome_json(self, tmp_path, capsys):
        import json

        from repro.observe.schema import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--out", str(path)]) == 0
        validate_chrome_trace(json.loads(path.read_text()))
        assert "wrote" in capsys.readouterr().out

    def test_trace_exports_jsonl_and_csv(self, tmp_path):
        import json

        from repro.observe.schema import validate_event

        jsonl = tmp_path / "events.jsonl"
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--format", "jsonl", "--out", str(jsonl)]) == 0
        for line in jsonl.read_text().splitlines():
            validate_event(json.loads(line))
        csv_path = tmp_path / "events.csv"
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--format", "csv", "--out", str(csv_path)]) == 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("cycle,kind,warp")

    def test_trace_kinds_filter(self, capsys):
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--kinds", "commit,issue"]) == 0
        out = capsys.readouterr().out
        assert "commit" in out
        assert "boc_hit" not in out

    def test_trace_bad_kinds_rejected(self, capsys):
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--kinds", "teleport"]) == 2
        assert "teleport" not in capsys.readouterr().out

    def test_trace_bad_capacity_rejected(self, capsys):
        assert main(["trace", "BFS", "--warps", "2", "--scale", "0.1",
                     "--capacity", "0"]) == 2
        assert "--capacity" in capsys.readouterr().err

    def test_trace_unknown_design_fails_cleanly(self, capsys):
        assert main(["trace", "BFS", "--design", "magic",
                     "--warps", "2", "--scale", "0.1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_trace_hinted_design_runs(self, capsys):
        assert main(["trace", "BFS", "--design", "bow-wr",
                     "--warps", "2", "--scale", "0.1"]) == 0
        assert "write_eliminated" in capsys.readouterr().out


class TestSweepResilience:
    ARGV = ["sweep", "BFS", "NW", "--designs", "baseline,bow",
            "--warps", "2", "--scale", "0.1"]

    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    @pytest.fixture
    def faulted(self, tmp_path):
        """A permanent injected failure on one of the four grid points."""
        from repro.testing.faults import FaultSpec, injected_faults

        with injected_faults(7, tmp_path / "faults",
                             [FaultSpec("raise", times=0,
                                        match="BFS/bow IW3")]):
            yield

    def test_strict_sweep_aborts_naming_the_point(self, faulted, capsys):
        code = main(self.ARGV + ["--no-cache"])
        assert code == 1
        err = capsys.readouterr().err
        assert "BFS/bow IW3" in err

    def test_keep_going_prints_partial_grid_and_exits_3(self, faulted,
                                                        capsys):
        code = main(self.ARGV + ["--no-cache", "--keep-going"])
        assert code == 3
        captured = capsys.readouterr()
        assert "3 simulated" in captured.out
        assert "1 FAILED" in captured.out
        assert "1 grid point(s) failed" in captured.err

    def test_keep_going_then_heal(self, faulted, tmp_path, capsys):
        from repro.experiments.runner import clear_cache
        from repro.testing.faults import uninstall

        cached = self.ARGV + ["--cache-dir", str(tmp_path / "runs")]
        assert main(cached + ["--keep-going"]) == 3
        uninstall()  # the fault "goes away"
        clear_cache()
        assert main(cached + ["--expect-sims", "1"]) == 0
        clear_cache()
        assert main(cached + ["--expect-warm"]) == 0

    def test_expect_sims_mismatch_fails(self, tmp_path, capsys):
        code = main(self.ARGV + ["--cache-dir", str(tmp_path / "runs"),
                                 "--expect-sims", "0"])
        assert code == 1
        assert "expected exactly 0 simulated" in capsys.readouterr().err

    def test_retries_flag_bounds_attempts(self, tmp_path, capsys):
        from repro.testing.faults import FaultSpec, injected_faults

        with injected_faults(7, tmp_path / "faults",
                             [FaultSpec("oserror", times=0,
                                        match="BFS/bow IW3")]):
            code = main(self.ARGV + ["--no-cache", "--keep-going",
                                     "--retries", "2"])
        assert code == 3
        assert "2 attempt(s)" in capsys.readouterr().err

    def test_bad_retries_rejected(self, capsys):
        code = main(self.ARGV + ["--no-cache", "--retries", "0"])
        assert code == 2
        assert "--retries" in capsys.readouterr().err

    def test_timeout_flag_is_threaded_through(self, capsys, monkeypatch):
        import repro.experiments.grid as grid_module

        policies = []
        real = grid_module.run_grid

        def spy(*args, **kwargs):
            policies.append(kwargs.get("retry"))
            return real(*args, **kwargs)

        monkeypatch.setattr(grid_module, "run_grid", spy)
        assert main(self.ARGV + ["--no-cache", "--timeout", "60"]) == 0
        assert policies and policies[0].timeout == 60.0


class TestExperiment:
    def test_static_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["experiment", "fig99"]) == 1


class TestAblation:
    def test_rf_size_ablation(self, capsys):
        assert main(["ablation", "rf-size"]) == 0
        out = capsys.readouterr().out
        assert "transient" in out

    def test_unknown_ablation_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["ablation", "quantum"])


class TestCompile:
    def test_compile_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.asm"
        source.write_text(
            "mov.u32 $r1, 0x1\n"
            "add.u32 $r2, $r1, $r1\n"
            "st.global.u32 [$r3], $r2\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "oc-only" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.asm"]) == 1

    def test_parse_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.asm"
        source.write_text("frobnicate $r1\n")
        assert main(["compile", str(source)]) == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepExitCodePrecedence:
    """All diagnostics print, then the highest-priority code wins:
    failed grid points (3) beat failed expectations (1)."""

    ARGV = ["sweep", "BFS", "NW", "--designs", "baseline,bow",
            "--warps", "2", "--scale", "0.1"]

    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    @pytest.fixture
    def faulted(self, tmp_path):
        from repro.testing.faults import FaultSpec, injected_faults

        with injected_faults(7, tmp_path / "faults",
                             [FaultSpec("raise", times=0,
                                        match="BFS/bow IW3")]):
            yield

    def test_failures_beat_expect_warm(self, faulted, capsys):
        code = main(self.ARGV + ["--no-cache", "--keep-going",
                                 "--expect-warm"])
        assert code == 3
        err = capsys.readouterr().err
        # Both diagnostics are reported even though only one code wins.
        assert "expected a warm cache" in err
        assert "grid point(s) failed" in err

    def test_failures_beat_expect_sims(self, faulted, capsys):
        code = main(self.ARGV + ["--no-cache", "--keep-going",
                                 "--expect-sims", "4"])
        assert code == 3
        err = capsys.readouterr().err
        assert "expected exactly 4 simulated" in err
        assert "grid point(s) failed" in err

    def test_expectations_alone_still_exit_1(self, capsys):
        code = main(self.ARGV + ["--no-cache", "--expect-warm",
                                 "--expect-sims", "0"])
        assert code == 1
        err = capsys.readouterr().err
        assert "expected a warm cache" in err
        assert "expected exactly 0 simulated" in err


class TestServeLoadgenCLI:
    @pytest.fixture(autouse=True)
    def isolated_caches(self):
        from repro.experiments.runner import clear_cache, set_cache

        clear_cache()
        previous = set_cache(None)
        yield
        set_cache(previous)
        clear_cache()

    @pytest.fixture
    def running_server(self):
        """An in-process sweep server on a background thread."""
        import asyncio
        import threading

        from repro.service import SweepServer, SweepService

        holder = {}
        ready = threading.Event()

        def run():
            async def body():
                server = SweepServer(SweepService(cache=None))
                await server.start()
                holder["port"] = server.port
                ready.set()
                try:
                    await server.serve_until_shutdown()
                finally:
                    await server.close()

            asyncio.run(body())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        yield holder["port"]
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_loadgen_round_trip_with_expect_dedup(self, running_server,
                                                  tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_service.json"
        code = main(["loadgen", "--port", str(running_server),
                     "--clients", "4", "--benchmarks", "BFS",
                     "--designs", "baseline,bow", "--warps", "2",
                     "--scale", "0.1", "--expect-dedup", "--shutdown",
                     "--bench-out", str(bench)])
        assert code == 0
        captured = capsys.readouterr()
        assert "single-flight OK" in captured.out
        assert str(bench) in captured.err
        report = json.loads(bench.read_text(encoding="utf-8"))
        assert report["single_flight"]["dedup_ok"]
        assert report["unique_points"] == 2

    def test_loadgen_bad_clients_exits_2(self, capsys):
        code = main(["loadgen", "--clients", "0"])
        assert code == 2
        assert "--clients" in capsys.readouterr().err

    def test_loadgen_bad_points_exits_2(self, capsys):
        code = main(["loadgen", "--points", "0"])
        assert code == 2
        assert "--points" in capsys.readouterr().err

    def test_loadgen_bad_windows_exits_2(self, capsys):
        code = main(["loadgen", "--windows", "abc"])
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_loadgen_unreachable_server_is_a_clean_error(self, capsys,
                                                         monkeypatch):
        from repro.service import client as client_module

        monkeypatch.setattr(client_module, "CONNECT_RETRY_SECONDS", 0.2)
        code = main(["loadgen", "--port", "1", "--clients", "1"])
        assert code == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_serve_bad_retries_exits_2(self, capsys):
        code = main(["serve", "--retries", "0"])
        assert code == 2
        assert "--retries" in capsys.readouterr().err
