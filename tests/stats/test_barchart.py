"""Tests for text bar-chart rendering."""

import pytest

from repro.stats.report import format_barchart


class TestBarchart:
    def test_basic_shape(self):
        chart = format_barchart([("a", 0.5), ("bb", 1.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].count("#") == 10  # the max fills the width
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        chart = format_barchart([("x", 0.5), ("longer", 0.5)], width=4)
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_title(self):
        chart = format_barchart([("a", 1.0)], title="Chart")
        assert chart.splitlines()[0] == "Chart"

    def test_explicit_scale(self):
        chart = format_barchart([("a", 0.25)], width=8, max_value=1.0)
        assert chart.count("#") == 2

    def test_values_rendered_as_percent_by_default(self):
        assert "25.0%" in format_barchart([("a", 0.25)])

    def test_custom_renderer(self):
        chart = format_barchart([("a", 3.0)],
                                render_value=lambda v: f"{v:.1f}x")
        assert "3.0x" in chart

    def test_zero_series(self):
        chart = format_barchart([("a", 0.0)])
        assert "#" not in chart

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_barchart([("a", -1.0)])

    def test_empty_series(self):
        assert format_barchart([], title="t") == "t"
