"""Tests for the event-counter record."""

import pytest

from repro.stats.counters import Counters


class TestDerived:
    def test_bypass_rates(self):
        counters = Counters()
        counters.rf_reads = 40
        counters.bypassed_reads = 60
        counters.rf_writes = 70
        counters.bypassed_writes = 30
        assert counters.read_bypass_rate == pytest.approx(0.6)
        assert counters.write_bypass_rate == pytest.approx(0.3)
        assert counters.total_reads == 100
        assert counters.total_writes == 100

    def test_rates_zero_when_empty(self):
        counters = Counters()
        assert counters.read_bypass_rate == 0.0
        assert counters.write_bypass_rate == 0.0
        assert counters.ipc == 0.0

    def test_ipc(self):
        counters = Counters()
        counters.instructions = 300
        counters.cycles = 100
        assert counters.ipc == pytest.approx(3.0)


class TestAlgebra:
    def test_addition(self):
        a = Counters()
        a.rf_reads = 5
        a.cycles = 10
        b = Counters()
        b.rf_reads = 7
        b.oc_wait_cycles = 3
        merged = a + b
        assert merged.rf_reads == 12
        assert merged.cycles == 10
        assert merged.oc_wait_cycles == 3

    def test_addition_leaves_operands_unchanged(self):
        a = Counters()
        a.rf_reads = 5
        b = Counters()
        _ = a + b
        assert a.rf_reads == 5
        assert b.rf_reads == 0

    def test_as_dict_roundtrip(self):
        counters = Counters()
        counters.rf_writes = 9
        data = counters.as_dict()
        assert data["rf_writes"] == 9
        assert set(data) >= {"rf_reads", "cycles", "bypassed_reads",
                             "boc_evictions", "lifetime_cycles"}
