"""Tests for ASCII table rendering."""

from repro.stats.report import format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.553) == "55.3%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"
        assert format_percent(0.12345, digits=2) == "12.35%"

    def test_over_one(self):
        assert format_percent(1.1) == "110.0%"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "------" in lines[1]
        # Columns align: 'value' column starts at the same offset.
        assert lines[2].index("1") == lines[3].index("22")

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_floats_three_decimals(self):
        table = format_table(["x"], [[0.123456]])
        assert "0.123" in table

    def test_wide_cell_expands_column(self):
        table = format_table(["x"], [["averylongcellvalue"]])
        assert "averylongcellvalue" in table

    def test_no_trailing_whitespace(self):
        table = format_table(["a", "b"], [["x", "y"]])
        assert all(line == line.rstrip() for line in table.splitlines())

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert len(table.splitlines()) == 2
