"""Tests for time-series sampling."""

import pytest

from repro.config import BOWConfig
from repro.core.boc import BOWCollectors
from repro.errors import SimulationError
from repro.gpu.sm import SMEngine
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.stats.counters import Counters
from repro.stats.timeline import Timeline, TimelineSample


def counters(instructions=0, bypassed_reads=0):
    c = Counters()
    c.instructions = instructions
    c.bypassed_reads = bypassed_reads
    return c


class TestSampling:
    def test_samples_on_grid_only(self):
        timeline = Timeline(interval=10)
        timeline.maybe_sample(5, counters(), 0, 0)
        timeline.maybe_sample(10, counters(instructions=3), 2, 1)
        timeline.maybe_sample(15, counters(), 0, 0)
        timeline.maybe_sample(20, counters(instructions=8), 5, 2)
        assert [s.cycle for s in timeline.samples] == [10, 20]
        assert timeline.samples[0].instructions == 3
        assert timeline.samples[1].rf_accesses == 7

    def test_interval_validated(self):
        with pytest.raises(SimulationError):
            Timeline(interval=0)


class TestFinalize:
    def test_appends_drain_tail_sample(self):
        timeline = Timeline(interval=10)
        timeline.maybe_sample(10, counters(instructions=3), 2, 1)
        timeline.finalize(17, counters(instructions=9), 4, 3)
        assert [s.cycle for s in timeline.samples] == [10, 17]
        assert timeline.samples[-1].instructions == 9

    def test_noop_when_run_ends_on_the_grid(self):
        timeline = Timeline(interval=10)
        timeline.maybe_sample(10, counters(instructions=3), 2, 1)
        timeline.finalize(10, counters(instructions=3), 2, 1)
        assert [s.cycle for s in timeline.samples] == [10]

    def test_samples_even_when_run_shorter_than_interval(self):
        timeline = Timeline(interval=100)
        timeline.finalize(7, counters(instructions=4), 1, 1)
        assert [s.cycle for s in timeline.samples] == [7]

    def test_engine_run_ends_with_final_cycle_sample(self):
        # Regression: runs whose length is not a multiple of the
        # sampling interval used to lose their drain tail entirely.
        trace = KernelTrace(name="t", warps=[
            WarpTrace(0, parse_program("""
                mov.u32 $r1, 0x1
                add.u32 $r2, $r1, $r1
                st.global.u32 [$r2], $r1
            """))
        ])
        timeline = Timeline(interval=1000)  # way past the run length
        engine = SMEngine(trace, timeline=timeline)
        result = engine.run()
        assert timeline.samples
        assert timeline.samples[-1].cycle == result.counters.cycles
        assert (timeline.samples[-1].instructions
                == result.counters.instructions)

    def test_engine_tail_not_duplicated_on_aligned_runs(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(0, parse_program("mov.u32 $r1, 0x1"))
        ])
        timeline = Timeline(interval=1)  # every cycle is on the grid
        engine = SMEngine(trace, timeline=timeline)
        result = engine.run()
        cycles = [s.cycle for s in timeline.samples]
        assert len(cycles) == len(set(cycles))
        assert cycles[-1] == result.counters.cycles


class TestDerivedSeries:
    def _timeline(self):
        timeline = Timeline(interval=10)
        timeline.samples.extend([
            TimelineSample(10, 20, 10, 0),
            TimelineSample(20, 50, 15, 5),
        ])
        return timeline

    def test_ipc_series_is_per_interval(self):
        series = self._timeline().ipc_series()
        assert series == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_bypass_series(self):
        series = self._timeline().bypass_series()
        assert series[0] == 0.0
        assert series[1] == pytest.approx(0.5)  # 5 of 10 in interval 2

    def test_format_sparkline(self):
        text = self._timeline().format()
        assert text.startswith("IPC/interval")

    def test_empty_format(self):
        assert Timeline().format() == "(no samples)"


class TestEngineIntegration:
    def test_engine_fills_timeline(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(0, parse_program("""
                mov.u32 $r1, 0x1
                add.u32 $r2, $r1, $r1
                add.u32 $r3, $r2, $r1
                st.global.u32 [$r3], $r2
            """))
        ])
        timeline = Timeline(interval=5)
        engine = SMEngine(trace, timeline=timeline)
        engine.run()
        assert timeline.samples
        final = timeline.samples[-1]
        assert final.instructions <= 4

    def test_bow_timeline_shows_bypassing(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(0, parse_program("\n".join(
                ["mov.u32 $r1, 0x1"]
                + ["add.u32 $r1, $r1, $r1"] * 8
            )))
        ])
        timeline = Timeline(interval=5)
        engine = SMEngine(
            trace,
            provider_factory=lambda e: BOWCollectors(e, BOWConfig()),
            timeline=timeline,
        )
        engine.run()
        assert max(timeline.bypass_series(), default=0.0) > 0.0
