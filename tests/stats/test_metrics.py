"""Tests for derived run metrics."""

import pytest

from repro.errors import SimulationError
from repro.stats.counters import Counters
from repro.stats.metrics import RunMetrics, bypass_rates, ipc_improvement


def run_counters(instructions, cycles, oc_wait=0):
    counters = Counters()
    counters.instructions = instructions
    counters.cycles = cycles
    counters.oc_wait_cycles = oc_wait
    return counters


class TestRunMetrics:
    def test_from_counters(self):
        metrics = RunMetrics.from_counters(run_counters(100, 50))
        assert metrics.ipc == pytest.approx(2.0)
        assert metrics.instructions == 100

    def test_ipc_improvement(self):
        base = RunMetrics.from_counters(run_counters(100, 100))
        fast = RunMetrics.from_counters(run_counters(100, 80))
        assert fast.ipc_improvement_over(base) == pytest.approx(0.25)

    def test_ipc_improvement_zero_baseline(self):
        base = RunMetrics.from_counters(run_counters(0, 100))
        other = RunMetrics.from_counters(run_counters(10, 10))
        with pytest.raises(SimulationError):
            other.ipc_improvement_over(base)

    def test_oc_residency_normalized_per_instruction(self):
        base = RunMetrics.from_counters(run_counters(100, 100, oc_wait=200))
        bow = RunMetrics.from_counters(run_counters(100, 90, oc_wait=80))
        assert bow.oc_residency_vs(base) == pytest.approx(0.4)

    def test_oc_residency_zero_baseline(self):
        # Regression: a baseline with no OC waits (tiny traces) must not
        # raise; the denominator is guarded like the instruction counts.
        base = RunMetrics.from_counters(run_counters(100, 100, oc_wait=0))
        quiet = RunMetrics.from_counters(run_counters(100, 100, oc_wait=0))
        busy = RunMetrics.from_counters(run_counters(100, 100, oc_wait=10))
        assert quiet.oc_residency_vs(base) == pytest.approx(0.0)
        ratio = busy.oc_residency_vs(base)
        assert ratio > 0.0
        assert ratio == ratio  # finite, not NaN

    def test_oc_residency_zero_instructions(self):
        # Regression: empty runs must not divide by zero either.
        base = RunMetrics.from_counters(run_counters(0, 10, oc_wait=0))
        bow = RunMetrics.from_counters(run_counters(0, 10, oc_wait=0))
        assert bow.oc_residency_vs(base) == pytest.approx(0.0)


class TestHelpers:
    def test_bypass_rates(self):
        counters = Counters()
        counters.rf_reads = 1
        counters.bypassed_reads = 3
        reads, writes = bypass_rates(counters)
        assert reads == pytest.approx(0.75)
        assert writes == 0.0

    def test_ipc_improvement_helper(self):
        assert ipc_improvement(
            run_counters(100, 50), run_counters(100, 100)
        ) == pytest.approx(1.0)
