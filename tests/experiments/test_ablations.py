"""Tests for the ablation studies (tiny scales)."""

import pytest

from repro.experiments.ablations import (
    capacity_sweep,
    effective_rf_study,
    eviction_ablation,
    scheduler_ablation,
    window_sweep,
)
from repro.experiments.runner import RunScale, clear_cache

TINY = RunScale(num_warps=4, trace_scale=0.1)
FEW = ("SAD", "WP")


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSchedulerAblation:
    def test_bow_helps_under_both_policies(self):
        result = scheduler_ablation(benchmarks=FEW, scale=TINY)
        for policy in ("gto", "lrr"):
            assert result.average(policy) > -0.05

    def test_format(self):
        result = scheduler_ablation(benchmarks=FEW, scale=TINY)
        assert "GTO" in result.format()


class TestEvictionAblation:
    def test_both_policies_produce_evictions(self):
        result = eviction_ablation(benchmarks=("SAD",), capacity=2,
                                   scale=TINY)
        assert result.eviction_writebacks["SAD"]["fifo"] > 0
        assert result.eviction_writebacks["SAD"]["lru"] > 0

    def test_ipc_close_between_policies(self):
        # The extended window already approximates recency: the paper's
        # FIFO choice costs little.
        result = eviction_ablation(benchmarks=("SAD",), capacity=3,
                                   scale=TINY)
        fifo, lru = result.ipc["SAD"]["fifo"], result.ipc["SAD"]["lru"]
        assert fifo == pytest.approx(lru, rel=0.10)


class TestCapacitySweep:
    def test_evictions_monotone_decreasing(self):
        result = capacity_sweep("SAD", capacities=(2, 4, 8, 12), scale=TINY)
        evictions = [point[2] for point in result.points]
        assert evictions == sorted(evictions, reverse=True)

    def test_conservative_capacity_no_evictions(self):
        result = capacity_sweep("SAD", capacities=(12,), scale=TINY)
        assert result.points[0][2] == 0

    def test_starved_capacity_still_gains(self):
        result = capacity_sweep("SAD", capacities=(2,), scale=TINY)
        assert result.points[0][1] > -0.10


class TestWindowSweep:
    def test_bypass_monotone(self):
        result = window_sweep("SAD", windows=(2, 3, 7, 12), scale=TINY)
        rates = [point[1] for point in result.points]
        assert rates == sorted(rates)

    def test_diminishing_returns(self):
        result = window_sweep("SAD", windows=(2, 3, 12), scale=TINY)
        rates = {iw: rate for iw, rate, _ in result.points}
        assert rates[3] - rates[2] >= (rates[12] - rates[3]) / 3


class TestEffectiveRf:
    def test_transient_fraction_near_paper(self):
        result = effective_rf_study(benchmarks=FEW)
        assert 0.3 <= result.average_transient_fraction() <= 0.8

    def test_format_has_all_rows(self):
        result = effective_rf_study(benchmarks=FEW)
        text = result.format()
        assert "SAD" in text and "WP" in text and "AVERAGE" in text
