"""Tests for the headline-summary driver (tiny scale)."""

import pytest

from repro.experiments.runner import RunScale, clear_cache
from repro.experiments.summary import Claim, HeadlineSummary, headline_summary


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestStructure:
    def test_claim_rendering(self):
        summary = HeadlineSummary(claims=(
            Claim("a", "1%", "2%", True),
            Claim("b", "3%", "9%", False),
        ))
        text = summary.format()
        assert "NO" in text
        assert not summary.all_hold

    def test_all_hold_when_all_hold(self):
        summary = HeadlineSummary(claims=(Claim("a", "1", "1", True),))
        assert summary.all_hold


class TestLive:
    def test_summary_runs_at_tiny_scale(self):
        summary = headline_summary(
            scale=RunScale(num_warps=6, trace_scale=0.1)
        )
        assert len(summary.claims) == 11
        names = {claim.name for claim in summary.claims}
        assert "IPC gain, BOW" in names
        assert "added storage, half-size" in names
        # Storage arithmetic is scale-independent; it must always hold.
        storage = next(c for c in summary.claims
                       if c.name == "added storage, half-size")
        assert storage.holds
