"""Tests for the deterministic fault injector (:mod:`repro.testing.faults`)."""

import errno

import pytest

from repro.errors import DeadlockError, ExperimentError
from repro.experiments import grid, runner
from repro.experiments.cache import RunCache
from repro.experiments.runner import RunScale, clear_cache, set_cache
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    WorkerCrashError,
    active_plan,
    injected_faults,
    install,
    uninstall,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)


@pytest.fixture(autouse=True)
def isolated(tmp_path):
    clear_cache()
    previous = set_cache(None)
    yield
    uninstall()
    set_cache(previous)
    clear_cache()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            FaultSpec("meteor")

    def test_rate_bounds_enforced(self):
        with pytest.raises(ExperimentError):
            FaultSpec("raise", rate=1.5)
        with pytest.raises(ExperimentError):
            FaultSpec("raise", rate=-0.1)

    def test_negative_times_and_duration_rejected(self):
        with pytest.raises(ExperimentError):
            FaultSpec("raise", times=-1)
        with pytest.raises(ExperimentError):
            FaultSpec("hang", duration=-1.0)


class TestDeterministicSelection:
    def test_selection_depends_only_on_seed_and_token(self, tmp_path):
        specs = [FaultSpec("raise", rate=0.5)]
        one = FaultPlan(3, tmp_path / "a", specs)
        two = FaultPlan(3, tmp_path / "b", specs)
        tokens = [f"BFS/bow IW{w}" for w in range(20)]
        assert ([one.selected(0, t) for t in tokens]
                == [two.selected(0, t) for t in tokens])

    def test_different_seeds_differ(self, tmp_path):
        specs = [FaultSpec("raise", rate=0.5)]
        tokens = [f"BFS/bow IW{w}" for w in range(50)]
        picks = {
            seed: tuple(FaultPlan(seed, tmp_path / str(seed),
                                  specs).selected(0, t) for t in tokens)
            for seed in (1, 2)
        }
        assert picks[1] != picks[2]

    def test_match_filters_tokens(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise", match="NW/")])
        assert plan.selected(0, "NW/bow IW3")
        assert not plan.selected(0, "BFS/bow IW3")

    def test_zero_rate_never_fires(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise", rate=0.0)])
        assert not any(plan.selected(0, f"BFS/bow IW{w}")
                       for w in range(50))


class TestFiringBookkeeping:
    def test_times_bounds_firings_then_heals(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise", times=2)])
        fired = sum(plan._claim(0, "BFS/bow IW3") for _ in range(5))
        assert fired == 2
        assert plan.spec_firings(0) == 2

    def test_claims_shared_across_plan_instances(self, tmp_path):
        """Two plans on one state dir model two processes: the firing
        budget is global, not per-process."""
        specs = [FaultSpec("raise", times=1)]
        first = FaultPlan(1, tmp_path, specs)
        second = FaultPlan(1, tmp_path, specs)
        assert first._claim(0, "BFS/bow IW3")
        assert not second._claim(0, "BFS/bow IW3")

    def test_zero_times_never_heals(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise", times=0)])
        assert all(plan._claim(0, "BFS/bow IW3") for _ in range(5))

    def test_reset_forgets_firings(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise", times=1)])
        assert plan._claim(0, "BFS/bow IW3")
        plan.reset()
        assert plan.firings() == 0
        assert plan._claim(0, "BFS/bow IW3")


class TestRunFaults:
    def test_raise_fires_through_execute_run(self, tmp_path):
        with injected_faults(1, tmp_path, [FaultSpec("raise", times=0)]):
            with pytest.raises(InjectedFaultError, match="BFS/bow IW3"):
                runner.execute_run("BFS", "bow", window_size=3, scale=TINY)

    def test_oserror_carries_eio(self, tmp_path):
        with injected_faults(1, tmp_path, [FaultSpec("oserror", times=0)]):
            with pytest.raises(OSError) as excinfo:
                runner.execute_run("BFS", "bow", window_size=3, scale=TINY)
        assert excinfo.value.errno == errno.EIO

    def test_deadlock_fires_as_deadlock_error(self, tmp_path):
        with injected_faults(1, tmp_path, [FaultSpec("deadlock", times=0)]):
            with pytest.raises(DeadlockError):
                runner.execute_run("BFS", "bow", window_size=3, scale=TINY)

    def test_kill_outside_a_worker_raises_instead(self, tmp_path):
        """In the parent process a kill fault must not take down the
        test runner — it degrades to WorkerCrashError."""
        with injected_faults(1, tmp_path, [FaultSpec("kill", times=0)]):
            with pytest.raises(WorkerCrashError):
                runner.execute_run("BFS", "bow", window_size=3, scale=TINY)

    def test_token_uses_the_effective_window(self, tmp_path):
        """baseline ignores IW, so its token is windowless — a match on
        the windowed form must not fire."""
        with injected_faults(1, tmp_path,
                             [FaultSpec("raise", times=0,
                                        match="BFS/baseline IW3")]):
            assert runner.execute_run("BFS", "baseline", window_size=3,
                                      scale=TINY) is not None

    def test_healed_fault_lets_the_run_through(self, tmp_path):
        with injected_faults(1, tmp_path, [FaultSpec("raise", times=1)]):
            with pytest.raises(InjectedFaultError):
                runner.execute_run("BFS", "bow", window_size=3, scale=TINY)
            assert runner.execute_run("BFS", "bow", window_size=3,
                                      scale=TINY) is not None


class TestCacheFaults:
    def put_one(self, cache):
        result = runner.execute_run("BFS", "baseline", scale=TINY)
        from repro.experiments.cache import run_key
        key = run_key("BFS", "baseline", 0, TINY)
        cache.put(key, result)
        return key

    def test_eacces_read_surfaces_via_the_seam(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        key = self.put_one(cache)
        with injected_faults(1, tmp_path / "faults",
                             [FaultSpec("cache-eacces", times=0)]):
            assert cache.get(key) is None  # swallowed, counted
        assert cache.stats.io_errors == 1

    def test_enospc_write_is_swallowed(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        with injected_faults(1, tmp_path / "faults",
                             [FaultSpec("cache-enospc", times=0)]):
            self.put_one(cache)
        assert cache.stats.stores == 0
        assert cache.stats.io_errors == 1

    def test_corrupt_write_is_a_later_counted_miss(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        with injected_faults(1, tmp_path / "faults",
                             [FaultSpec("cache-corrupt", times=0)]):
            key = self.put_one(cache)
        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert key not in cache  # torn entry deleted


class TestInstallation:
    def test_install_is_exclusive(self, tmp_path):
        plan = FaultPlan(1, tmp_path, [FaultSpec("raise")])
        install(plan)
        with pytest.raises(ExperimentError, match="already installed"):
            install(plan)

    def test_uninstall_restores_the_originals(self, tmp_path):
        execute = runner.execute_run
        read = RunCache._read_text
        write = RunCache._write_entry
        initializer = grid._pool_initializer
        with injected_faults(1, tmp_path, [FaultSpec("raise")]):
            assert runner.execute_run is not execute
            assert active_plan() is not None
            assert grid._pool_initializer is not initializer
        assert runner.execute_run is execute
        assert RunCache._read_text is read
        assert RunCache._write_entry is write
        assert grid._pool_initializer is initializer
        assert active_plan() is None

    def test_uninstall_without_install_is_a_noop(self):
        uninstall()
        assert active_plan() is None
