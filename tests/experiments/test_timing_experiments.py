"""Tests for the timing-based experiment drivers at tiny scale.

These assert the *shape* of the paper's results: who wins and in which
direction, not absolute magnitudes (a 4-warp run underestimates port
contention, so improvements are smaller than at full scale).
"""

import pytest

from repro.experiments.figures import (
    fig10_ipc_improvement,
    fig11_halfsize_ipc,
    fig12_oc_residency,
    fig13_energy,
    fig4_oc_latency,
    fig9_boc_occupancy,
    rfc_comparison,
)
from repro.experiments.runner import RunScale, clear_cache

SMALL = RunScale(num_warps=8, trace_scale=0.12)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_oc_latency(scale=SMALL)

    def test_oc_share_substantial(self, result):
        # Paper: roughly a quarter of execution time overall.
        assert 0.08 <= result.average_overall() <= 0.50

    def test_memory_instructions_lower_share(self, result):
        # Long memory latencies dwarf the collection stage.
        for bench in result.memory:
            assert result.memory[bench] < result.non_memory[bench]


class TestFig9:
    def test_occupancy_never_full(self):
        result = fig9_boc_occupancy(scale=SMALL)
        # Paper: the worst case (12 entries) never occurred.
        assert result.max_observed() < 12

    def test_above_half_rare(self):
        result = fig9_boc_occupancy(scale=SMALL)
        # Paper: ~3% of cycles need more than half the entries.
        assert result.average_above_half() < 0.15


class TestFig10:
    @pytest.fixture(scope="class")
    def results(self):
        return fig10_ipc_improvement(windows=(2, 3), scale=SMALL)

    def test_bow_improves_on_average(self, results):
        bow, _ = results
        assert bow.average(3) > 0.0

    def test_iw3_beats_iw2_on_average(self, results):
        bow, _ = results
        assert bow.average(3) >= bow.average(2)

    def test_formats(self, results):
        bow, bow_wr = results
        assert "IW3" in bow.format()
        assert "bow-wr" in bow_wr.format()


class TestFig11:
    def test_half_size_close_to_full(self):
        half = fig11_halfsize_ipc(scale=SMALL)
        bow, bow_wr = fig10_ipc_improvement(windows=(3,), scale=SMALL)
        # Paper: ~2% loss from halving the storage.
        assert half.average(3) == pytest.approx(bow_wr.average(3), abs=0.04)


class TestFig12:
    def test_residency_reduced(self):
        result = fig12_oc_residency(windows=(3,), scale=SMALL)
        assert result.average(3) < 0.9
        for bench, per_iw in result.residency.items():
            assert per_iw[3] < 1.1, bench


class TestFig13:
    @pytest.fixture(scope="class")
    def results(self):
        return fig13_energy(scale=SMALL)

    def test_bow_saves_energy(self, results):
        bow, _ = results
        assert 0.1 <= bow.average_savings() <= 0.6

    def test_bow_wr_saves_more(self, results):
        bow, bow_wr = results
        assert bow_wr.average_savings() > bow.average_savings()

    def test_overhead_small(self, results):
        bow, bow_wr = results
        assert bow.average_overhead() < 0.05
        assert bow_wr.average_overhead() <= bow.average_overhead() + 0.01

    def test_totals_below_one(self, results):
        bow, bow_wr = results
        for result in (bow, bow_wr):
            for bench in result.rf_fraction:
                assert result.total(bench) < 1.0


class TestRfc:
    def test_rfc_well_below_bow_wr(self):
        result = rfc_comparison(scale=SMALL)
        assert result.average_rfc_gain() < result.average_bow_wr_gain()

    def test_rfc_gain_small(self):
        result = rfc_comparison(scale=SMALL)
        # Paper: less than 2% improvement.
        assert result.average_rfc_gain() < 0.08

    def test_storage_comparison(self):
        result = rfc_comparison(scale=SMALL)
        assert result.rfc_storage_kb == pytest.approx(24.0)
        assert result.bow_wr_half_storage_kb == pytest.approx(12.0)
        assert result.rfc_storage_kb == 2 * result.bow_wr_half_storage_kb
