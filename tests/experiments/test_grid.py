"""Tests for the parallel sweep runner (``run_grid``)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import RunCache
from repro.experiments.grid import (
    default_jobs,
    run_grid,
    set_default_jobs,
    using_jobs,
)
from repro.experiments.runner import (
    RunScale,
    clear_cache,
    run_design,
    set_cache,
    simulations_run,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)
BENCHES = ("BFS", "NW", "SAD")
DESIGNS = ("baseline", "bow", "bow-wr")


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    yield
    set_cache(previous)
    clear_cache()


class TestGridShape:
    def test_covers_the_full_grid(self):
        grid = run_grid(BENCHES, DESIGNS, (3,), scale=TINY, cache=None)
        assert len(grid.results) == len(BENCHES) * len(DESIGNS)
        assert grid.simulated == len(grid.results)
        for bench in BENCHES:
            for design in DESIGNS:
                assert grid.get(bench, design, 3) is not None

    def test_windowless_designs_deduplicate(self):
        grid = run_grid(("BFS",), ("baseline", "bow"), (2, 3), scale=TINY,
                        cache=None)
        # baseline contributes one point; bow one per window.
        assert len(grid.results) == 3
        assert grid.get("BFS", "baseline", 2) is grid.get("BFS", "baseline", 3)

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid((), DESIGNS, (3,), scale=TINY, cache=None)

    def test_unknown_design_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid(BENCHES, ("quantum",), (3,), scale=TINY, cache=None)

    def test_missing_point_lookup_raises(self):
        grid = run_grid(("BFS",), ("baseline",), (3,), scale=TINY, cache=None)
        with pytest.raises(ExperimentError):
            grid.get("BFS", "bow", 3)


class TestExplicitPoints:
    """``run_grid(points=...)`` — the reentrant entry the sweep service
    batches through — bypasses the cross-product enumeration."""

    def test_explicit_points_resolve(self):
        from repro.experiments.grid import GridPoint

        grid = run_grid((), (), (), scale=TINY, cache=None, points=[
            GridPoint("BFS", "baseline", 3),
            GridPoint("NW", "bow", 3),
        ])
        assert len(grid.results) == 2
        assert grid.get("BFS", "baseline", 3) is not None
        assert grid.get("NW", "bow", 3) is not None

    def test_tuples_accepted(self):
        grid = run_grid((), (), (), scale=TINY, cache=None,
                        points=[("BFS", "baseline", 3)])
        assert grid.get("BFS", "baseline", 3) is not None

    def test_points_normalize_and_deduplicate(self):
        # Case-folding plus effective-window collapse: both entries are
        # the same baseline point, so only one simulation runs.
        grid = run_grid((), (), (), scale=TINY, cache=None, points=[
            ("bfs", "baseline", 2),
            ("BFS", "baseline", 3),
        ])
        assert len(grid.results) == 1
        assert grid.simulated == 1

    def test_explicit_points_match_cross_product(self):
        explicit = run_grid((), (), (), scale=TINY, cache=None, points=[
            ("BFS", "bow", 3)])
        clear_cache()
        product = run_grid(("BFS",), ("bow",), (3,), scale=TINY, cache=None)
        assert (explicit.get("BFS", "bow", 3)
                == product.get("BFS", "bow", 3))

    def test_empty_points_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid((), (), (), scale=TINY, cache=None, points=[])

    def test_unknown_design_in_points_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid((), (), (), scale=TINY, cache=None,
                     points=[("BFS", "quantum", 3)])


class TestSerialParity:
    def test_grid_matches_run_design(self):
        grid = run_grid(BENCHES, DESIGNS, (3,), scale=TINY, cache=None)
        clear_cache()
        for bench in BENCHES:
            for design in DESIGNS:
                assert (grid.get(bench, design, 3)
                        == run_design(bench, design, 3, TINY))

    def test_parallel_matches_serial(self):
        parallel = run_grid(BENCHES, ("baseline", "bow"), (3,), scale=TINY,
                            jobs=2, cache=None)
        clear_cache()
        serial = run_grid(BENCHES, ("baseline", "bow"), (3,), scale=TINY,
                          jobs=1, cache=None)
        assert parallel.results == serial.results

    def test_memo_serves_second_call(self):
        run_grid(("BFS",), ("baseline",), (3,), scale=TINY, cache=None)
        before = simulations_run()
        grid = run_grid(("BFS",), ("baseline",), (3,), scale=TINY, cache=None)
        assert grid.from_memo == 1
        assert simulations_run() == before


class TestWarmCache:
    def test_warm_cache_needs_zero_simulations(self, tmp_path):
        """The acceptance check: 3 benchmarks x 3 designs, warm pass."""
        cache = RunCache(tmp_path / "runs")
        cold = run_grid(BENCHES, DESIGNS, (3,), scale=TINY, jobs=1,
                        cache=cache)
        assert cold.simulated == len(BENCHES) * len(DESIGNS)
        clear_cache()  # a fresh process would start with an empty memo
        before = simulations_run()
        warm = run_grid(BENCHES, DESIGNS, (3,), scale=TINY, jobs=1,
                        cache=cache)
        assert warm.simulated == 0
        assert warm.from_cache == len(BENCHES) * len(DESIGNS)
        assert warm.cache_stats.misses == cold.cache_stats.misses
        assert warm.cache_stats.hits == len(BENCHES) * len(DESIGNS)
        assert simulations_run() == before
        assert warm.results == cold.results

    def test_parallel_cold_run_populates_cache(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        run_grid(BENCHES, ("baseline", "bow"), (3,), scale=TINY, jobs=2,
                 cache=cache)
        assert cache.entry_count() == 6

    def test_runner_default_cache_is_used(self, tmp_path):
        set_cache(RunCache(tmp_path / "runs"))
        run_grid(("BFS",), ("baseline",), (3,), scale=TINY)
        clear_cache()
        warm = run_grid(("BFS",), ("baseline",), (3,), scale=TINY)
        assert warm.from_cache == 1


class TestInstrumentation:
    def test_records_and_progress(self):
        lines = []
        grid = run_grid(("BFS",), ("baseline", "bow"), (3,), scale=TINY,
                        cache=None, progress=lines.append)
        assert len(grid.records) == 2
        assert len(lines) == 2
        assert all(record.seconds >= 0.0 for record in grid.records)
        assert grid.wall_seconds > 0.0
        assert "BFS" in lines[0]

    def test_format_mentions_sources(self):
        grid = run_grid(("BFS",), ("baseline",), (3,), scale=TINY, cache=None)
        text = grid.format()
        assert "sim" in text
        assert "1 simulated" in text


class TestJobsDefaults:
    def test_env_default(self, monkeypatch):
        set_default_jobs(None)
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert default_jobs() == 1

    def test_using_jobs_restores(self):
        set_default_jobs(None)
        with using_jobs(3):
            assert default_jobs() == 3
        assert default_jobs() == 1
