"""Tests for the persistent on-disk run cache."""

import errno
import warnings

import pytest

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    CacheDegradedWarning,
    RunCache,
    cache_from_env,
    default_cache_dir,
    run_key,
)
from repro.experiments.runner import (
    RunScale,
    clear_cache,
    execute_run,
    run_design,
    set_cache,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    yield
    set_cache(previous)
    clear_cache()


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "runs")


class TestRunKey:
    def test_deterministic(self):
        assert (run_key("BFS", "bow", 3, TINY)
                == run_key("bfs", "bow", 3, TINY))

    def test_distinguishes_every_axis(self):
        base = run_key("BFS", "bow", 3, TINY)
        assert run_key("NW", "bow", 3, TINY) != base
        assert run_key("BFS", "bow-wb", 3, TINY) != base
        assert run_key("BFS", "bow", 4, TINY) != base
        assert run_key("BFS", "bow", 3,
                       RunScale(num_warps=3, trace_scale=0.1)) != base
        assert run_key("BFS", "bow", 3,
                       RunScale(num_warps=2, trace_scale=0.2)) != base
        assert run_key("BFS", "bow", 3,
                       RunScale(num_warps=2, trace_scale=0.1,
                                memory_seed=8)) != base

    def test_machine_config_invalidates(self):
        from repro.config import GPUConfig

        assert (run_key("BFS", "bow", 3, TINY,
                        config=GPUConfig(mem_global_latency=400))
                != run_key("BFS", "bow", 3, TINY))


class TestRunCache:
    def test_miss_then_hit_round_trip(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        assert cache.get(key) is None
        cache.put(key, result)
        fetched = cache.get(key)
        assert fetched == result
        assert fetched is not result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.bytes_written > 0
        assert cache.stats.bytes_read == cache.stats.bytes_written

    def test_contains_and_entry_count(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        assert key not in cache
        cache.put(key, result)
        assert key in cache
        assert cache.entry_count() == 1
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_corrupt_entry_is_a_counted_miss(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        cache.put(key, result)
        cache._path(key).write_text("corrupt {")
        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert key not in cache  # dropped, will be re-stored

    def test_schema_version_embedded_in_layout(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        cache.put(key, result)
        assert f"v{CACHE_SCHEMA_VERSION}" in str(cache._path(key))

    def test_clear_removes_empty_fanout_dirs(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        for design in ("baseline", "bow", "bow-wr"):
            cache.put(run_key("BFS", design, 0, TINY), result)
        assert cache.clear() == 3
        versioned = cache.root / f"v{CACHE_SCHEMA_VERSION}"
        assert list(versioned.iterdir()) == []  # no skeleton left

    def test_clear_keeps_dirs_holding_foreign_files(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        cache.put(key, result)
        foreign = cache._path(key).parent / "unrelated.txt"
        foreign.write_text("keep me")
        cache.clear()
        assert foreign.read_text() == "keep me"


class TestGracefulDegradation:
    """get/put never raise; repeated I/O errors self-disable the cache."""

    def entry(self, cache):
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        cache.put(key, result)
        return key

    def test_missing_entry_is_a_plain_miss(self, cache):
        assert cache.get(run_key("BFS", "baseline", 0, TINY)) is None
        assert cache.stats.misses == 1
        assert cache.stats.errors == 0
        assert cache.stats.io_errors == 0

    def test_unreadable_entry_counts_an_io_error(self, cache, monkeypatch):
        """Satellite regression: EACCES used to look identical to a
        plain miss — it must feed ``errors``/``io_errors`` instead."""
        key = self.entry(cache)
        monkeypatch.setattr(
            RunCache, "_read_text",
            lambda self, path: (_ for _ in ()).throw(
                PermissionError(errno.EACCES, "denied", str(path))))
        assert cache.get(key) is None  # swallowed
        assert cache.stats.misses == 1
        assert cache.stats.errors == 1
        assert cache.stats.io_errors == 1

    def test_failed_write_is_swallowed_and_counted(self, cache, monkeypatch):
        monkeypatch.setattr(
            RunCache, "_write_entry",
            lambda self, path, text: (_ for _ in ()).throw(
                OSError(errno.ENOSPC, "no space left on device")))
        self.entry(cache)  # must not raise
        assert cache.stats.stores == 0
        assert cache.stats.io_errors == 1
        assert not cache.disabled

    def test_self_disables_after_threshold_with_one_warning(
            self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path / "runs", error_threshold=3)
        monkeypatch.setattr(
            RunCache, "_write_entry",
            lambda self, path, text: (_ for _ in ()).throw(
                OSError(errno.ENOSPC, "no space left on device")))
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(6):
                cache.put(key, result)
        degraded = [w for w in caught
                    if issubclass(w.category, CacheDegradedWarning)]
        assert len(degraded) == 1
        assert "continuing uncached" in str(degraded[0].message)
        assert cache.disabled
        assert cache.stats.disables == 1
        # Past the threshold every call is a no-op: no further errors.
        assert cache.stats.io_errors == 3

    def test_disabled_cache_ignores_reads_and_writes(self, cache,
                                                     monkeypatch):
        key = self.entry(cache)
        cache._disabled = True
        assert cache.get(key) is None
        assert cache.stats.hits == 0
        cache.reenable()
        assert cache.get(key) is not None

    def test_read_errors_also_feed_the_threshold(self, tmp_path,
                                                 monkeypatch):
        cache = RunCache(tmp_path / "runs", error_threshold=2)
        key = self.entry(cache)
        monkeypatch.setattr(
            RunCache, "_read_text",
            lambda self, path: (_ for _ in ()).throw(
                OSError(errno.EIO, "I/O error")))
        with pytest.warns(CacheDegradedWarning):
            cache.get(key)
            cache.get(key)
        assert cache.disabled

    def test_stats_format_reports_degradation(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path / "runs", error_threshold=1)
        monkeypatch.setattr(
            RunCache, "_write_entry",
            lambda self, path, text: (_ for _ in ()).throw(
                OSError(errno.ENOSPC, "full")))
        result = execute_run("BFS", "baseline", scale=TINY)
        with pytest.warns(CacheDegradedWarning):
            cache.put(run_key("BFS", "baseline", 0, TINY), result)
        text = cache.stats.format()
        assert "1 I/O error" in text
        assert "cache disabled" in text

    def test_reenable_resets_counter_and_restores_service(
            self, tmp_path, monkeypatch):
        """After the disk "heals", reenable() re-arms the cache: the
        consecutive-error counter restarts from zero (a fresh disable
        needs a full threshold of *new* errors) and get/put work again.
        Each disable is its own counted event — not double-counted by
        the errors that preceded the reenable."""
        cache = RunCache(tmp_path / "runs", error_threshold=2)
        boom = lambda self, path, text: (_ for _ in ()).throw(  # noqa: E731
            OSError(errno.ENOSPC, "no space left on device"))
        monkeypatch.setattr(RunCache, "_write_entry", boom)
        result = execute_run("BFS", "baseline", scale=TINY)
        key = run_key("BFS", "baseline", 0, TINY)
        with pytest.warns(CacheDegradedWarning):
            cache.put(key, result)
            cache.put(key, result)
        assert cache.disabled
        assert cache.stats.disables == 1
        assert cache.stats.io_errors == 2

        monkeypatch.undo()  # the disk heals
        cache.reenable()
        assert not cache.disabled
        cache.put(key, result)
        assert cache.stats.stores == 1
        assert cache.get(key) is not None
        assert cache.stats.hits == 1

        # The internal counter really was reset: one new error sits
        # below the threshold, a second disables again — and that is
        # counted as a second disable, not a continuation of the first.
        monkeypatch.setattr(RunCache, "_write_entry", boom)
        cache.put(key, result)
        assert not cache.disabled
        with pytest.warns(CacheDegradedWarning):
            cache.put(key, result)
        assert cache.disabled
        assert cache.stats.disables == 2
        assert cache.stats.io_errors == 4


class TestRunDesignIntegration:
    def test_cross_process_equivalent_hit(self, cache):
        """clear_cache() simulates a fresh process: disk must serve it."""
        set_cache(cache)
        first = run_design("BFS", "bow", window_size=3, scale=TINY)
        clear_cache()  # drop the in-process memo, keep the disk
        second = run_design("BFS", "bow", window_size=3, scale=TINY)
        assert second == first
        assert second is not first  # deserialized, not memoized
        assert cache.stats.hits == 1

    def test_fresh_run_equals_cached_run(self, cache):
        set_cache(cache)
        cached = run_design("BFS", "bow-wr", window_size=3, scale=TINY)
        clear_cache()
        set_cache(None)
        fresh = run_design("BFS", "bow-wr", window_size=3, scale=TINY)
        assert cached == fresh

    def test_scale_change_misses(self, cache):
        set_cache(cache)
        run_design("BFS", "baseline", scale=TINY)
        clear_cache()
        run_design("BFS", "baseline",
                   scale=RunScale(num_warps=2, trace_scale=0.1,
                                  memory_seed=99))
        assert cache.stats.hits == 0
        assert cache.stats.stores == 2


class TestEnvironment:
    def test_cache_from_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_from_env() is None

    def test_cache_from_env_set(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path / "env-cache"
        assert default_cache_dir() == tmp_path / "env-cache"
