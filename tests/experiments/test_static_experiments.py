"""Tests for the analysis-only (fast) experiment drivers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    fig1_onchip_memory,
    fig3_bypass_opportunity,
    fig7_write_destinations,
    fig8_ocu_occupancy,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import RunScale
from repro.experiments.tables import (
    table1_btree,
    table2_configuration,
    table4_overheads,
)

TINY = RunScale(num_warps=2, trace_scale=0.15)


class TestFig1:
    def test_five_generations(self):
        result = fig1_onchip_memory()
        assert len(result.sizes_mb) == 5

    def test_pascal_rf_dominates(self):
        result = fig1_onchip_memory()
        # The paper: Pascal RF ~14 MB, ~63% of on-chip storage.
        assert result.sizes_mb["PASCAL (2016)"]["register_file"] == 14.0
        assert result.rf_fraction("PASCAL (2016)") > 0.55

    def test_rf_grows_monotonically(self):
        result = fig1_onchip_memory()
        sizes = [row["register_file"] for row in result.sizes_mb.values()]
        assert sizes == sorted(sizes)

    def test_format(self):
        assert "PASCAL" in fig1_onchip_memory().format()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_bypass_opportunity(windows=(2, 3, 7), scale=TINY)

    def test_all_benchmarks_present(self, result):
        assert len(result.reads) == 15
        assert len(result.writes) == 15

    def test_average_read_bypass_near_paper(self, result):
        # Paper: 45% at IW2, 59% at IW3, >70% at IW7.
        assert result.average_reads(2) == pytest.approx(0.45, abs=0.12)
        assert result.average_reads(3) == pytest.approx(0.59, abs=0.10)
        assert result.average_reads(7) > 0.60

    def test_average_write_bypass_near_paper(self, result):
        # Paper: 35% at IW2, 52% at IW3.  Our generator's consolidation
        # distances skew short (and short test traces inflate dead
        # writes), so the IW2 value runs high; the IW3 value and the
        # ordering hold.
        assert 0.30 <= result.average_writes(2) <= 0.65
        assert result.average_writes(3) == pytest.approx(0.52, abs=0.15)
        assert result.average_writes(2) < result.average_writes(3)

    def test_monotone_in_window(self, result):
        for bench, per_iw in result.reads.items():
            assert per_iw[2] <= per_iw[3] <= per_iw[7], bench

    def test_format_contains_average(self, result):
        assert "AVERAGE" in result.format()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_write_destinations(scale=TINY)

    def test_fractions_sum_to_one(self, result):
        for bench in result.rf_only:
            total = (result.rf_only[bench] + result.both[bench]
                     + result.oc_only[bench])
            assert total == pytest.approx(1.0)

    def test_averages_near_paper(self, result):
        # Paper: 21% RF-only, 27% both, 52% transient.
        rf_only, both, oc_only = result.averages()
        assert rf_only == pytest.approx(0.21, abs=0.12)
        assert oc_only == pytest.approx(0.52, abs=0.12)

    def test_transient_share_dominates(self, result):
        _, _, oc_only = result.averages()
        assert oc_only > 0.4


class TestFig8:
    def test_three_source_share_small(self):
        result = fig8_ocu_occupancy(scale=TINY)
        # Paper: ~2% of instructions need all three entries.
        assert result.average(3) < 0.06

    def test_bfs_btree_lps_have_none(self):
        result = fig8_ocu_occupancy(scale=TINY)
        for bench in ("BFS", "BTREE", "LPS"):
            assert result.histograms[bench][3] == 0.0


class TestTables:
    def test_table1_matches_paper_compiler_column(self):
        result = table1_btree()
        assert result.total("compiler") == 2
        assert result.counts["compiler"] == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}

    def test_table1_ordering(self):
        result = table1_btree()
        assert (result.total("write-through") > result.total("write-back")
                > result.total("compiler"))

    def test_table1_format(self):
        text = table1_btree().format()
        assert "$r1" in text and "Total" in text

    def test_table2_echoes_config(self):
        text = table2_configuration().format()
        assert "56" in text and "256KB" in text and "GTO" in text

    def test_table4_storage_numbers(self):
        result = table4_overheads()
        assert result.full_added_storage_kb == pytest.approx(36.0)
        assert result.half_added_storage_kb == pytest.approx(12.0)
        # Paper: 4% of the RF.
        assert result.half_fraction_of_rf == pytest.approx(0.047, abs=0.01)

    def test_table4_ratios(self):
        result = table4_overheads()
        assert result.access_energy_ratio == pytest.approx(0.0147, abs=0.002)
        assert result.boc_size_bytes == 1536


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig1", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "table1", "table2", "table4",
                    "rfc"}
        assert expected <= set(EXPERIMENTS)

    def test_run_experiment_static(self):
        text = run_experiment("table1")
        assert "Table I" in text

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_case_insensitive(self):
        assert "Table I" in run_experiment("TABLE1")
