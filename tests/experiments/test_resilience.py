"""Tests for fault-tolerant sweep execution.

Unit coverage of :mod:`repro.experiments.resilience` (policy, taxonomy,
failure records) plus grid-level behaviour under the deterministic
fault injector: crashed workers, transient I/O errors, hangs with
per-point timeouts, deadlocks, and strict-vs-keep-going semantics.
"""

import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import (
    DeadlockError,
    ExperimentError,
    SweepPointError,
    SweepTimeoutError,
)
from repro.experiments.cache import RunCache
from repro.experiments.grid import run_grid
from repro.experiments.resilience import (
    NO_RETRY, PERMANENT, TRANSIENT, RetryPolicy, classify_failure,
    describe_failure,
)
from repro.experiments.runner import RunScale, clear_cache, set_cache
from repro.testing.faults import (
    FaultSpec,
    InjectedFaultError,
    WorkerCrashError,
    injected_faults,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)
BENCHES = ("BFS", "NW")
DESIGNS = ("baseline", "bow")

#: Zero backoff keeps retry-heavy tests fast.
FAST = RetryPolicy(max_attempts=3, backoff_base=0.0)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    yield
    set_cache(previous)
    clear_cache()


def faulted_grid(tmp_path, specs, *, jobs=1, retry=FAST, strict=False,
                 seed=11, state="faults", cache=None, **kwargs):
    clear_cache()
    with injected_faults(seed, tmp_path / state, specs):
        return run_grid(BENCHES, DESIGNS, (3,), scale=TINY, jobs=jobs,
                        retry=retry, strict=strict, cache=cache, **kwargs)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_transient_retries_permanent_does_not(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(TRANSIENT, 1)
        assert policy.should_retry(TRANSIENT, 2)
        assert not policy.should_retry(TRANSIENT, 3)
        assert not policy.should_retry(PERMANENT, 1)

    def test_retry_permanent_opt_in(self):
        policy = RetryPolicy(max_attempts=2, retry_permanent=True)
        assert policy.should_retry(PERMANENT, 1)
        assert not policy.should_retry(PERMANENT, 2)

    def test_no_retry_never_retries(self):
        assert not NO_RETRY.should_retry(TRANSIENT, 1)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            RetryPolicy(timeout=0.0)


class TestClassification:
    @pytest.mark.parametrize("error", [
        BrokenProcessPool("worker died"),
        OSError(5, "I/O error"),
        MemoryError(),
        TimeoutError(),
        WorkerCrashError("injected"),
        SweepTimeoutError("BFS/bow IW3", 2.0, 1.0),
    ])
    def test_transient(self, error):
        assert classify_failure(error) == TRANSIENT

    @pytest.mark.parametrize("error", [
        ValueError("bad"),
        DeadlockError("stuck", 0),
        InjectedFaultError("injected"),
        ExperimentError("unknown design"),
    ])
    def test_permanent(self, error):
        assert classify_failure(error) == PERMANENT


class TestPointFailure:
    def failure(self):
        try:
            raise InjectedFaultError("synthetic")
        except InjectedFaultError as error:
            return describe_failure("BFS", "bow", 3, "BFS/bow IW3",
                                    error, 2, 1.5)

    def test_describe_captures_the_event(self):
        failure = self.failure()
        assert failure.kind == PERMANENT
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFaultError"
        assert "synthetic" in failure.message
        assert "InjectedFaultError" in failure.traceback_text

    def test_signature_excludes_error_type(self):
        # kill faults surface as WorkerCrashError at jobs=1 but
        # BrokenProcessPool at jobs>1; the signature must match anyway.
        assert self.failure().signature() == ("BFS/bow IW3", PERMANENT, 2)

    def test_to_error_names_the_point(self):
        error = self.failure().to_error()
        assert isinstance(error, SweepPointError)
        assert "BFS/bow IW3" in str(error)
        assert "InjectedFaultError" in str(error)


class TestGridFaults:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_fault_exhausts_retries(self, tmp_path, jobs):
        grid = faulted_grid(
            tmp_path, [FaultSpec("oserror", times=0, match="BFS/bow IW3")],
            jobs=jobs)
        assert len(grid.results) == 3
        assert [f.signature() for f in grid.failures] == [
            ("BFS/bow IW3", TRANSIENT, FAST.max_attempts)]
        assert not grid.ok and grid.failed == 1

    def test_transient_fault_heals_within_budget(self, tmp_path):
        grid = faulted_grid(
            tmp_path, [FaultSpec("oserror", times=2, match="BFS/bow IW3")])
        assert grid.ok
        assert grid.get("BFS", "bow", 3) is not None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_permanent_fault_fails_first_attempt(self, tmp_path, jobs):
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="NW/baseline")],
            jobs=jobs)
        assert [f.signature() for f in grid.failures] == [
            ("NW/baseline", PERMANENT, 1)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_crash_charges_only_the_victim(self, tmp_path, jobs):
        """A dying worker (BrokenProcessPool at jobs>1) fails exactly
        the point that killed it; siblings resolve normally."""
        grid = faulted_grid(
            tmp_path, [FaultSpec("kill", times=0, match="BFS/bow IW3")],
            jobs=jobs)
        assert len(grid.results) == 3
        assert [f.signature() for f in grid.failures] == [
            ("BFS/bow IW3", TRANSIENT, FAST.max_attempts)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hang_beyond_timeout_fails_the_point(self, tmp_path, jobs):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, timeout=0.6)
        grid = faulted_grid(
            tmp_path,
            [FaultSpec("hang", times=0, duration=1.2, match="NW/bow IW3")],
            jobs=jobs, retry=policy)
        assert len(grid.results) == 3
        assert [f.signature() for f in grid.failures] == [
            ("NW/bow IW3", TRANSIENT, 2)]
        assert grid.failures[0].error_type == "SweepTimeoutError"

    def test_failure_determinism_across_job_counts(self, tmp_path):
        """Same fault seed, same failure records at jobs=1 and jobs=4."""
        signatures = []
        for jobs, state in ((1, "s1"), (4, "s4")):
            grid = faulted_grid(
                tmp_path,
                [FaultSpec("kill", times=0, match="BFS/bow IW3"),
                 FaultSpec("raise", times=0, match="NW/baseline")],
                jobs=jobs, state=state)
            signatures.append(sorted(f.signature() for f in grid.failures))
        assert signatures[0] == signatures[1] == [
            ("BFS/bow IW3", TRANSIENT, FAST.max_attempts),
            ("NW/baseline", PERMANENT, 1)]


class TestDeadlockPropagation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_strict_sweep_raises_with_the_point_label(self, tmp_path, jobs):
        """A DeadlockError in one point surfaces through run_grid with
        the grid-point label attached, at any job count."""
        with pytest.raises(SweepPointError) as excinfo:
            faulted_grid(
                tmp_path, [FaultSpec("deadlock", times=0, match="NW/bow")],
                jobs=jobs, strict=True)
        assert "NW/bow IW3" in str(excinfo.value)
        assert "DeadlockError" in str(excinfo.value)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_keep_going_resolves_the_siblings(self, tmp_path, jobs):
        grid = faulted_grid(
            tmp_path, [FaultSpec("deadlock", times=0, match="NW/bow")],
            jobs=jobs, strict=False)
        assert len(grid.results) == 3
        assert [f.signature() for f in grid.failures] == [
            ("NW/bow IW3", PERMANENT, 1)]
        for bench, design in (("BFS", "baseline"), ("BFS", "bow"),
                              ("NW", "baseline")):
            assert grid.get(bench, design, 3) is not None


class TestGridResultFailureApi:
    def test_get_on_failed_point_names_the_failure(self, tmp_path):
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="BFS/bow IW3")])
        with pytest.raises(SweepPointError) as excinfo:
            grid.get("BFS", "bow", 3)
        assert "BFS/bow IW3" in str(excinfo.value)
        assert "InjectedFaultError" in str(excinfo.value)

    def test_unknown_point_still_distinct_from_failed(self, tmp_path):
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="BFS/bow IW3")])
        with pytest.raises(ExperimentError, match="not part of this grid"):
            grid.get("SAD", "bow", 3)

    def test_format_lists_failures(self, tmp_path):
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="BFS/bow IW3")])
        text = grid.format()
        assert "1 FAILED" in text
        assert "BFS/bow IW3" in text

    def test_raise_failures_mentions_the_count(self, tmp_path):
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="bow IW3")])
        assert grid.failed == 2
        with pytest.raises(SweepPointError, match=r"\+1 more"):
            grid.raise_failures()

    def test_progress_reports_failures(self, tmp_path):
        lines = []
        grid = faulted_grid(
            tmp_path, [FaultSpec("raise", times=0, match="BFS/bow IW3")],
            progress=lines.append)
        assert len(lines) == len(grid.records) + len(grid.failures)
        assert any("FAILED" in line for line in lines)


class TestNothingFinishedIsLost:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_completed_points_are_cached_before_strict_raises(
            self, tmp_path, jobs):
        """Satellite regression: a strict sweep that aborts must still
        have drained every completed sibling into the cache — the
        retry pass only re-simulates the point that actually failed."""
        cache = RunCache(tmp_path / "runs")
        with pytest.raises(SweepPointError):
            faulted_grid(
                tmp_path, [FaultSpec("raise", times=0, match="BFS/bow IW3")],
                jobs=jobs, strict=True, cache=cache)
        clear_cache()
        healed = run_grid(BENCHES, DESIGNS, (3,), scale=TINY, jobs=1,
                          cache=cache)
        assert healed.ok
        assert healed.simulated == 1
        assert healed.from_cache == 3

    def test_serial_and_parallel_share_wall_clock_accounting(self, tmp_path):
        start = time.perf_counter()
        grid = faulted_grid(
            tmp_path, [FaultSpec("oserror", times=1, match="BFS/bow IW3")],
            jobs=2)
        assert grid.ok
        assert 0.0 < grid.wall_seconds <= time.perf_counter() - start
