"""Tests for the experiment run infrastructure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    QUICK,
    RunScale,
    benchmark_trace,
    clear_cache,
    run_design,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)


@pytest.fixture(autouse=True)
def isolated_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunScale:
    def test_quick_defaults(self):
        assert QUICK.num_warps == 16
        assert QUICK.trace_scale == 0.25

    def test_validation(self):
        with pytest.raises(ExperimentError):
            RunScale(num_warps=0)
        with pytest.raises(ExperimentError):
            RunScale(trace_scale=0)


class TestTraceCache:
    def test_same_key_returns_same_object(self):
        first = benchmark_trace("BFS", TINY)
        second = benchmark_trace("BFS", TINY)
        assert first is second

    def test_window_size_distinguishes_hinted(self):
        plain = benchmark_trace("BFS", TINY)
        hinted = benchmark_trace("BFS", TINY, window_size=3)
        assert plain is not hinted

    def test_scale_applied(self):
        trace = benchmark_trace("BFS", TINY)
        assert trace.num_warps == 2


class TestRunDesign:
    def test_memoization(self):
        first = run_design("BFS", "baseline", scale=TINY)
        second = run_design("BFS", "baseline", scale=TINY)
        assert first is second

    def test_window_ignored_for_baseline(self):
        first = run_design("BFS", "baseline", window_size=2, scale=TINY)
        second = run_design("BFS", "baseline", window_size=4, scale=TINY)
        assert first is second

    def test_window_respected_for_bow(self):
        first = run_design("BFS", "bow", window_size=2, scale=TINY)
        second = run_design("BFS", "bow", window_size=4, scale=TINY)
        assert first is not second

    def test_unknown_design(self):
        with pytest.raises(ExperimentError):
            run_design("BFS", "quantum", scale=TINY)

    def test_unknown_design_error_has_clean_traceback(self):
        # Regression: the unknown-design error used to leak the internal
        # KeyError as "During handling of the above exception..." noise.
        with pytest.raises(ExperimentError) as excinfo:
            run_design("BFS", "quantum", scale=TINY)
        error = excinfo.value
        assert error.__context__ is None or error.__suppress_context__

    def test_hinted_designs_get_compiled_traces(self):
        from repro.isa import WritebackHint

        run_design("BFS", "bow-wr", window_size=3, scale=TINY)
        hinted = benchmark_trace("BFS", TINY, window_size=3)
        hints = {
            inst.hint
            for warp in hinted
            for inst in warp
            if inst.dest is not None
        }
        assert hints != {WritebackHint.BOTH}
