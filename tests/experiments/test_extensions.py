"""Tests for the extension studies (warp scaling, SIMT suite study)."""

import pytest

from repro.experiments.ablations import warp_scaling
from repro.experiments.runner import clear_cache
from repro.experiments.simt_study import simt_suite_study


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestWarpScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return warp_scaling("SAD", warp_counts=(4, 12), trace_scale=0.1)

    def test_ipc_grows_with_warps(self, result):
        ipcs = [point[1] for point in result.points]
        assert ipcs == sorted(ipcs)

    def test_bow_gains_at_every_occupancy(self, result):
        for warps, _, _, gain in result.points:
            assert gain > 0, warps

    def test_format(self, result):
        assert "warps" in result.format()


class TestSimtStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return simt_suite_study(benchmarks=("BFS", "SAD"), warps=1,
                                max_instructions=1500)

    def test_efficiency_in_range(self, result):
        for bench, value in result.efficiency.items():
            assert 0.0 < value <= 1.0, bench

    def test_divergent_loops_hurt_efficiency(self, result):
        # Per-lane trip counts make these loops far from lock-step.
        assert result.average_efficiency() < 0.9

    def test_coalescing_stats_present(self, result):
        for bench in result.avg_transactions:
            assert result.avg_transactions[bench] >= 1.0
            assert 0.0 <= result.coalesced_fraction[bench] <= 1.0

    def test_format_lists_benchmarks(self, result):
        text = result.format()
        assert "BFS" in text and "SAD" in text


class TestReorderStudy:
    def test_average_never_negative(self):
        from repro.experiments.ablations import reorder_study

        result = reorder_study(benchmarks=("WP", "BTREE", "SAD"))
        assert result.average_gain() >= 0.0
        assert "moved" in result.format()


class TestDceStudy:
    def test_dce_lowers_or_keeps_write_bypass(self):
        from repro.experiments.ablations import dce_study

        result = dce_study(benchmarks=("WP", "VECTORADD"))
        for bench, dead, before, after in result.rows:
            assert 0.0 <= dead < 0.6, bench
        assert "dead instructions" in result.format()


class TestRegistryExtensions:
    def test_extensions_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        for key in ("warps", "simt", "table3", "reorder", "dce", "summary"):
            assert key in EXPERIMENTS, key
