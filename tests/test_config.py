"""Tests for machine and BOW configuration."""

import pytest

from repro.config import (
    BASELINE_OC_ENTRIES,
    BOWConfig,
    GPUConfig,
    SchedulerPolicy,
    WritebackPolicy,
    baseline_config,
    bow_config,
    bow_wb_config,
    bow_wr_config,
)
from repro.errors import ConfigError


class TestGPUConfig:
    def test_defaults_match_table2(self):
        cfg = GPUConfig()
        assert cfg.num_sms == 56
        assert cfg.cores_per_sm == 128
        assert cfg.max_warps_per_sm == 32
        assert cfg.max_threads_per_sm == 1024
        assert cfg.register_file_bytes == 256 * 1024
        assert cfg.num_banks == 32
        assert cfg.num_schedulers == 4
        assert cfg.scheduler_policy is SchedulerPolicy.GTO

    def test_warp_register_is_128_bytes(self):
        assert GPUConfig().warp_register_bytes == 128

    def test_bank_geometry_consistent(self):
        cfg = GPUConfig()
        assert cfg.bank_bytes * cfg.num_banks == cfg.register_file_bytes

    def test_registers_per_warp(self):
        # 2048 warp-registers over 32 warp slots = 64 each.
        assert GPUConfig().registers_per_warp == 64

    def test_bank_mapping_in_range(self):
        cfg = GPUConfig()
        for warp in (0, 7, 31):
            for reg in (0, 1, 63, 255):
                assert 0 <= cfg.bank_of(warp, reg) < cfg.num_banks

    def test_bank_mapping_spreads_same_register_across_warps(self):
        cfg = GPUConfig()
        banks = {cfg.bank_of(w, 5) for w in range(cfg.num_banks)}
        assert len(banks) == cfg.num_banks

    def test_issue_width_total(self):
        assert GPUConfig().issue_width_total() == 8

    def test_rejects_nonpositive_banks(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_banks=0)

    def test_rejects_inconsistent_thread_count(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_threads_per_sm=999)

    def test_rejects_inconsistent_rf_geometry(self):
        with pytest.raises(ConfigError):
            GPUConfig(entries_per_bank=63)

    def test_rejects_nonpositive_read_latency(self):
        with pytest.raises(ConfigError):
            GPUConfig(rf_read_latency=0)


class TestBOWConfig:
    def test_default_window_is_three(self):
        assert BOWConfig().window_size == 3

    def test_conservative_capacity(self):
        # 3 instructions x 4 registers (paper SS IV-C).
        assert BOWConfig(window_size=3).effective_capacity == 12

    def test_explicit_capacity_overrides(self):
        cfg = BOWConfig(window_size=3, capacity_entries=6)
        assert cfg.effective_capacity == 6
        assert cfg.conservative_capacity == 12

    def test_half_size(self):
        assert BOWConfig(window_size=3).half_size().effective_capacity == 6

    def test_boc_bytes_full_is_1_5kb(self):
        # The paper's 1.5 KB per BOC at IW=3.
        assert BOWConfig(window_size=3).boc_bytes() == 1536

    def test_total_boc_bytes(self):
        assert BOWConfig(window_size=3).total_boc_bytes() == 1536 * 32

    def test_storage_overhead_full_is_36kb_equiv(self):
        # Added storage = 48 KB total - 12 KB baseline = 36 KB => ~14% of RF.
        frac = BOWConfig(window_size=3).storage_overhead_fraction()
        assert frac == pytest.approx(36 * 1024 / (256 * 1024))

    def test_storage_overhead_half_is_12kb_equiv(self):
        frac = BOWConfig(window_size=3).half_size().storage_overhead_fraction()
        assert frac == pytest.approx(12 * 1024 / (256 * 1024))

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            BOWConfig(window_size=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            BOWConfig(capacity_entries=0)

    def test_baseline_oc_entries_constant(self):
        assert BASELINE_OC_ENTRIES == 3


class TestFactories:
    def test_baseline_is_disabled(self):
        assert not baseline_config().enabled

    def test_bow_is_write_through(self):
        cfg = bow_config(4)
        assert cfg.enabled
        assert cfg.window_size == 4
        assert cfg.writeback is WritebackPolicy.WRITE_THROUGH

    def test_bow_wb_is_write_back(self):
        assert bow_wb_config().writeback is WritebackPolicy.WRITE_BACK

    def test_bow_wr_is_compiler(self):
        assert bow_wr_config().writeback is WritebackPolicy.COMPILER

    def test_bow_wr_half_capacity(self):
        assert bow_wr_config(3, half_size=True).effective_capacity == 6
