"""Tests for the fluent kernel builder."""

import pytest

from repro.errors import KernelError
from repro.gpu.reference import execute_reference
from repro.kernels.builder import KernelBuilder


def saxpy_builder():
    b = KernelBuilder("saxpy")
    b.mov(1, imm=0)
    b.mov(2, imm=0x100)
    b.mov(4, imm=3)
    b.jump("body")
    b.block("body")
    b.ld(3, addr=2)
    b.mad(1, 3, 4, 1)
    b.add(2, 2, imm=4)
    b.branch(taken="body", fallthrough="done", probability=0.8)
    b.block("done")
    b.st(addr=2, value=1)
    b.exit()
    return b


class TestStructure:
    def test_build_produces_valid_cfg(self):
        cfg = saxpy_builder().build()
        assert set(cfg.blocks) == {"entry", "body", "done"}
        assert cfg.entry == "entry"
        assert cfg.successors("body") == ["body", "done"]

    def test_branch_appends_bra(self):
        cfg = saxpy_builder().build()
        assert cfg.blocks["body"].instructions[-1].opcode.name == "bra"

    def test_exit_appends_exit(self):
        cfg = saxpy_builder().build()
        assert cfg.blocks["done"].instructions[-1].opcode.name == "exit"

    def test_unsealed_block_becomes_exit(self):
        b = KernelBuilder("flat")
        b.mov(1, imm=1)
        cfg = b.build()
        assert cfg.blocks["entry"].is_exit

    def test_sealed_block_rejects_instructions(self):
        b = KernelBuilder("k")
        b.exit()
        with pytest.raises(KernelError):
            b.mov(1, imm=1)

    def test_double_terminator_rejected(self):
        b = KernelBuilder("k")
        b.jump("next")
        with pytest.raises(KernelError):
            b._seal([])

    def test_resuming_sealed_block_rejected(self):
        b = KernelBuilder("k")
        b.jump("next")
        with pytest.raises(KernelError):
            b.block("entry")

    def test_dangling_target_caught_at_build(self):
        b = KernelBuilder("k")
        b.jump("ghost")
        with pytest.raises(KernelError):
            b.build()


class TestSugar:
    def test_mov_requires_operand(self):
        with pytest.raises(KernelError):
            KernelBuilder("k").mov(1)

    def test_binary_requires_second_operand(self):
        with pytest.raises(KernelError):
            KernelBuilder("k").add(1, 2)

    def test_immediate_forms(self):
        b = KernelBuilder("k")
        b.add(1, 2, imm=5)
        inst = b.build().blocks["entry"].instructions[0]
        assert inst.immediate == 5
        assert [s.id for s in inst.sources] == [2]

    def test_predicates(self):
        b = KernelBuilder("k")
        b.set_lt(0, 1, 2)
        b.mov(3, imm=7, guard=0)
        b.mov(3, imm=9, guard=0, guard_negated=True)
        block = b.build().blocks["entry"].instructions
        assert block[0].pred_dest.id == 0
        assert block[1].predicate.id == 0 and not block[1].predicate.negated
        assert block[2].predicate.negated

    def test_memory_spaces(self):
        b = KernelBuilder("k")
        b.ld(1, addr=2, space="shared")
        b.st(addr=2, value=1, space="shared")
        block = b.build().blocks["entry"].instructions
        assert block[0].opcode.name == "ld.shared"
        assert block[1].opcode.name == "st.shared"

    def test_invalid_register(self):
        with pytest.raises(KernelError):
            KernelBuilder("k").mov("r1", imm=0)


class TestExecution:
    def test_trace_expansion(self):
        trace = saxpy_builder().trace(num_warps=3, seed=2)
        assert trace.num_warps == 3
        assert all(len(w) > 5 for w in trace)

    def test_built_kernel_simulates(self):
        from repro.core.bow_sm import simulate_design

        trace = saxpy_builder().trace(num_warps=4, seed=2)
        base = simulate_design("baseline", trace, memory_seed=1)
        bow = simulate_design("bow", trace, window_size=3, memory_seed=1)
        reference = execute_reference(trace, memory_seed=1)
        assert base.memory_image == reference.memory
        assert bow.memory_image == reference.memory
        assert bow.counters.bypassed_reads > 0

    def test_builder_kernel_compiles(self):
        from repro.compiler import compile_kernel

        cfg = saxpy_builder().build()
        compiled = compile_kernel(cfg, window_size=3)
        assert compiled.allocation.total_registers >= 4
