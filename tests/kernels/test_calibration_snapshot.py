"""Golden-snapshot regression pin for the calibrated suite.

The generator is fully deterministic, so each benchmark's trace length
and IW=3 bypass statistics are exact constants.  This pin catches
accidental drift: any change to the generator, the profiles, or the
window analysis that moves these numbers fails loudly, pointing at
`docs/CALIBRATION.md` for the re-calibration procedure.

Regenerate the snapshot (after an *intentional* change) with::

    python - <<'PY'
    ... see the file's git history, or rebuild via the same loop below.
    PY
"""

import json
from pathlib import Path

import pytest

from repro.core.window import (
    read_bypass_counts,
    write_bypass_opportunity_counts,
)
from repro.kernels.suites import BENCHMARKS, build_benchmark_trace

GOLDEN_PATH = Path(__file__).parent / "calibration_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def measure(name):
    trace = build_benchmark_trace(name, num_warps=2, scale=0.3)
    read_hits = read_total = write_hits = write_total = 0
    for warp in trace:
        h, t = read_bypass_counts(warp.instructions, 3)
        read_hits, read_total = read_hits + h, read_total + t
        h, t = write_bypass_opportunity_counts(warp.instructions, 3)
        write_hits, write_total = write_hits + h, write_total + t
    return {
        "instructions": trace.total_instructions,
        "read_bypass_iw3": round(read_hits / read_total, 6),
        "write_bypass_iw3": round(write_hits / write_total, 6),
    }


def test_snapshot_covers_suite(golden):
    assert set(golden) == set(BENCHMARKS)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_matches_snapshot(name, golden):
    measured = measure(name)
    expected = golden[name]
    assert measured["instructions"] == expected["instructions"], (
        f"{name}: trace length drifted - generator changed?"
    )
    for key in ("read_bypass_iw3", "write_bypass_iw3"):
        assert measured[key] == pytest.approx(expected[key], abs=1e-6), (
            f"{name}.{key} drifted - recalibrate (docs/CALIBRATION.md)"
        )
