"""Functional tests for the classic-kernel library.

Each kernel is seeded with known inputs and simulated end-to-end; the
memory image must contain the algorithm's exact answer — on the
baseline GPU *and* on every bypassing design.
"""

import pytest

from repro.core.bow_sm import simulate_design
from repro.errors import KernelError
from repro.gpu.memory import MemoryModel
from repro.kernels.library import (
    INPUT_BASE, LIBRARY, dot_product, prefix_sum, read_outputs,
    reduction_sum, saxpy, stencil3, vector_add,
)

N = 6
A = [3, 1, 4, 1, 5, 9]
B = [2, 7, 1, 8, 2, 8]


def preload_for(warp_ids, values, base=INPUT_BASE):
    data = {}
    for warp_id in warp_ids:
        for index, value in enumerate(values):
            address = MemoryModel.thread_address(warp_id, base + 4 * index)
            data[address] = value
    return data


def run(builder, preload, design="baseline", warps=1):
    trace = builder.trace(num_warps=warps, seed=1)
    return simulate_design(design, trace, window_size=3, preload=preload,
                           memory_seed=5)


class TestVectorAdd:
    def test_exact_result(self):
        preload = preload_for([0], A + B)
        result = run(vector_add(N), preload)
        outputs = read_outputs(result.memory_image, 0, N)
        assert outputs == [a + b for a, b in zip(A, B)]

    def test_multi_warp_independent(self):
        preload = preload_for([0, 1], A + B)
        result = run(vector_add(N), preload, warps=2)
        for warp in (0, 1):
            assert read_outputs(result.memory_image, warp, N) == \
                [a + b for a, b in zip(A, B)]


class TestReduction:
    def test_exact_sum(self):
        preload = preload_for([0], A)
        result = run(reduction_sum(N), preload)
        assert read_outputs(result.memory_image, 0, 1) == [sum(A)]


class TestSaxpy:
    def test_exact_result(self):
        preload = preload_for([0], A + B)
        result = run(saxpy(N, scale=3), preload)
        # y is overwritten in place at INPUT_BASE + 4*N.
        outputs = read_outputs(result.memory_image, 0, N,
                               base=INPUT_BASE + 4 * N)
        assert outputs == [3 * a + b for a, b in zip(A, B)]


class TestStencil:
    def test_exact_result(self):
        padded = [10] + A + [20]  # halo on both sides
        preload = preload_for([0], padded)
        result = run(stencil3(N), preload)
        outputs = read_outputs(result.memory_image, 0, N)
        expected = [padded[i] + padded[i + 1] + padded[i + 2]
                    for i in range(N)]
        assert outputs == expected


class TestDotProduct:
    def test_exact_result(self):
        preload = preload_for([0], A + B)
        result = run(dot_product(N), preload)
        expected = sum(a * b for a, b in zip(A, B))
        assert read_outputs(result.memory_image, 0, 1) == [expected]


class TestPrefixSum:
    def test_exact_result(self):
        preload = preload_for([0], A)
        result = run(prefix_sum(N), preload)
        outputs = read_outputs(result.memory_image, 0, N)
        running = 0
        expected = []
        for value in A:
            running += value
            expected.append(running)
        assert outputs == expected


class TestAcrossDesigns:
    @pytest.mark.parametrize("design", ["bow", "bow-wb", "bow-wr", "rfc"])
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_every_kernel_on_every_design(self, name, design):
        factory = LIBRARY[name]
        inputs = A + B if name in ("vector_add", "saxpy", "dot_product") \
            else [10] + A + [20]
        preload = preload_for([0], inputs)
        baseline = run(factory(N), preload)
        other = run(factory(N), preload, design=design)
        assert other.memory_image == baseline.memory_image, (name, design)


class TestValidation:
    def test_zero_length_rejected(self):
        for factory in LIBRARY.values():
            with pytest.raises(KernelError):
                factory(0)

    def test_library_enumerates_all(self):
        assert set(LIBRARY) == {
            "vector_add", "reduction_sum", "saxpy", "stencil3",
            "dot_product", "prefix_sum",
        }
