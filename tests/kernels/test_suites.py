"""Tests for the Table III benchmark suite and its calibration."""

import pytest

from repro.core.window import read_bypass_counts, write_bypass_opportunity_counts
from repro.errors import KernelError
from repro.kernels.suites import (
    BENCHMARKS,
    benchmark_names,
    build_benchmark_trace,
    get_profile,
)

EXPECTED = {
    "LIB": "ISPASS", "LPS": "ISPASS", "STO": "ISPASS", "WP": "ISPASS",
    "BACKPROP": "Rodinia", "BFS": "Rodinia", "BTREE": "Rodinia",
    "GAUSSIAN": "Rodinia", "MUM": "Rodinia", "NW": "Rodinia",
    "SRAD": "Rodinia", "CIFARNET": "Tango", "SQUEEZENET": "Tango",
    "VECTORADD": "CUDA SDK", "SAD": "Parboil",
}


class TestSuiteStructure:
    def test_fifteen_benchmarks(self):
        assert len(BENCHMARKS) == 15

    def test_names_and_suites_match_table3(self):
        for name, suite in EXPECTED.items():
            assert get_profile(name).suite == suite

    def test_lookup_case_insensitive(self):
        assert get_profile("btree").name == "BTREE"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KernelError):
            get_profile("DOOM")

    def test_benchmark_names_order_stable(self):
        assert benchmark_names() == tuple(BENCHMARKS)

    def test_no_three_source_ops_in_bfs_btree_lps(self):
        # Paper Figure 8: these issue no 3-source instructions.
        for name in ("BFS", "BTREE", "LPS"):
            assert get_profile(name).spec.max_source_operands == 2


class TestTraceBuilding:
    def test_build_with_overrides(self):
        trace = build_benchmark_trace("VECTORADD", num_warps=3, scale=0.2)
        assert trace.num_warps == 3
        assert trace.total_instructions > 0

    def test_deterministic(self):
        first = build_benchmark_trace("BFS", num_warps=2, scale=0.2)
        second = build_benchmark_trace("BFS", num_warps=2, scale=0.2)
        assert first.total_instructions == second.total_instructions


def _suite_rates(window_size, scale=0.3):
    reads, writes = [], []
    for name in benchmark_names():
        trace = build_benchmark_trace(name, num_warps=2, scale=scale)
        read_hits = read_total = write_hits = write_total = 0
        for warp in trace:
            h, t = read_bypass_counts(warp.instructions, window_size)
            read_hits, read_total = read_hits + h, read_total + t
            h, t = write_bypass_opportunity_counts(warp.instructions,
                                                   window_size)
            write_hits, write_total = write_hits + h, write_total + t
        reads.append(read_hits / read_total)
        writes.append(write_hits / write_total)
    return reads, writes


class TestCalibration:
    """The suite reproduces the paper's Figure 3 aggregates (shape)."""

    def test_iw3_suite_averages(self):
        reads, writes = _suite_rates(3)
        # Paper: 59% reads, 52% writes at IW=3.
        assert 0.50 <= sum(reads) / len(reads) <= 0.68
        assert 0.42 <= sum(writes) / len(writes) <= 0.66

    def test_iw2_lower_than_iw3(self):
        reads2, _ = _suite_rates(2)
        reads3, _ = _suite_rates(3)
        assert sum(reads2) < sum(reads3)

    def test_per_benchmark_read_targets_within_band(self):
        for name in benchmark_names():
            profile = get_profile(name)
            trace = build_benchmark_trace(name, num_warps=2, scale=0.3)
            hits = total = 0
            for warp in trace:
                h, t = read_bypass_counts(warp.instructions, 3)
                hits, total = hits + h, total + t
            measured = hits / total
            assert measured == pytest.approx(profile.paper_read_bypass,
                                             abs=0.10), name

    def test_wp_has_least_reuse(self):
        # The paper singles out WP for low operand reuse.
        rates = {}
        for name in benchmark_names():
            trace = build_benchmark_trace(name, num_warps=2, scale=0.3)
            hits = total = 0
            for warp in trace:
                h, t = read_bypass_counts(warp.instructions, 3)
                hits, total = hits + h, total + t
            rates[name] = hits / total
        assert min(rates, key=rates.get) == "WP"
        assert rates["SAD"] > rates["WP"] + 0.2
