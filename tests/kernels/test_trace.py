"""Tests for warp/kernel traces and access iteration."""

import pytest

from repro.errors import KernelError
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace, iter_accesses

PROGRAM = """
mov.u32 $r1, 0x1
add.u32 $r2, $r1, $r1
ld.global.u32 $r3, [$r2]
st.global.u32 [$r2], $r3
exit
"""


@pytest.fixture
def warp():
    return WarpTrace(warp_id=0, instructions=parse_program(PROGRAM))


class TestWarpTrace:
    def test_len_iter_getitem(self, warp):
        assert len(warp) == 5
        assert warp[0].opcode.name == "mov"
        assert [i.opcode.name for i in warp][-1] == "exit"

    def test_counts(self, warp):
        assert warp.num_reads == 0 + 2 + 1 + 2  # mov has imm only
        assert warp.num_writes == 3  # mov, add, ld
        assert warp.num_memory == 2

    def test_registers_used(self, warp):
        assert warp.registers_used() == (1, 2, 3)

    def test_negative_warp_id_rejected(self):
        with pytest.raises(KernelError):
            WarpTrace(warp_id=-1)


class TestKernelTrace:
    def test_aggregates(self, warp):
        other = WarpTrace(warp_id=1, instructions=parse_program(PROGRAM))
        kernel = KernelTrace(name="k", warps=[warp, other])
        assert kernel.num_warps == 2
        assert kernel.total_instructions == 10
        assert kernel.total_reads == 2 * warp.num_reads
        assert kernel.total_writes == 6
        assert kernel.memory_fraction() == pytest.approx(4 / 10)

    def test_duplicate_warp_ids_rejected(self, warp):
        clone = WarpTrace(warp_id=0, instructions=[])
        with pytest.raises(KernelError):
            KernelTrace(name="k", warps=[warp, clone])

    def test_empty_kernel(self):
        kernel = KernelTrace(name="empty")
        assert kernel.total_instructions == 0
        assert kernel.memory_fraction() == 0.0


class TestIterAccesses:
    def test_sources_before_dest(self, warp):
        accesses = list(iter_accesses(warp.instructions))
        add_accesses = [a for a in accesses if a.index == 1]
        assert [a.is_write for a in add_accesses] == [False, False, True]
        assert [a.register_id for a in add_accesses] == [1, 1, 2]

    def test_operand_slots(self, warp):
        accesses = [a for a in iter_accesses(warp.instructions) if a.index == 1]
        assert [a.operand_slot for a in accesses] == [0, 1, -1]

    def test_store_has_no_write(self, warp):
        store_accesses = [a for a in iter_accesses(warp.instructions)
                          if a.index == 3]
        assert all(not a.is_write for a in store_accesses)

    def test_total_access_count(self, warp):
        accesses = list(iter_accesses(warp.instructions))
        assert len(accesses) == warp.num_reads + warp.num_writes
