"""Property-based tests (hypothesis) for generated kernel CFGs.

The fuzz generator (:mod:`repro.fuzz.generator`) promises that every
CFG it composes through :class:`~repro.kernels.builder.KernelBuilder`
upholds the :class:`~repro.kernels.cfg.KernelCFG` invariants: the graph
validates, every block is sealed (terminated by a control transfer or an
exit), and the entry can always reach an exit — so trace expansion
terminates.  These are exactly the invariants the differential fuzzer
relies on; here they get direct property coverage over many seeds.
"""

from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    FuzzConfig,
    expand_warps,
    generate_case,
    generate_cfg,
)
from repro.isa.registers import SINK_REGISTER

SEEDS = st.integers(min_value=0, max_value=10**6)

#: A quicker config for properties that expand traces.
_SMALL = FuzzConfig(max_trace_instructions=96, max_warps=3)


class TestGeneratedCfgInvariants:
    @given(seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_cfg_validates(self, seed):
        cfg = generate_cfg(seed)
        for block in cfg:
            block.validate()  # does not raise
        cfg._validate_edges()  # every edge targets a defined block

    @given(seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_every_block_is_sealed(self, seed):
        """Sealed: an exit (no edges) or 1-2 edges with a terminator."""
        cfg = generate_cfg(seed)
        for block in cfg:
            assert len(block.edges) <= 2
            if len(block.edges) == 2:
                # Two-way blocks always end in the branch instruction
                # the builder emitted when it sealed them.
                assert block.instructions
                assert block.instructions[-1].opcode.name == "bra"
                total = sum(edge.probability for edge in block.edges)
                assert abs(total - 1.0) < 1e-9

    @given(seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_entry_reaches_an_exit(self, seed):
        cfg = generate_cfg(seed)
        pending = [cfg.entry]
        seen = set()
        reachable_exit = False
        while pending:
            label = pending.pop()
            if label in seen:
                continue
            seen.add(label)
            block = cfg.blocks[label]
            if block.is_exit:
                reachable_exit = True
            pending.extend(edge.target for edge in block.edges)
        assert reachable_exit

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_register_ids_stay_architectural(self, seed):
        """No operand ever touches the reserved sink register."""
        cfg = generate_cfg(seed)
        for block in cfg:
            for inst in block.instructions:
                for src in inst.sources:
                    assert 0 <= src.id < SINK_REGISTER.id
                if inst.dest is not None and inst.dest != SINK_REGISTER:
                    assert 0 <= inst.dest.id < SINK_REGISTER.id


class TestExpansionProperties:
    @given(seed=SEEDS, num_warps=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_expansion_is_deterministic(self, seed, num_warps):
        cfg = generate_cfg(seed, _SMALL)
        first = expand_warps(cfg, num_warps, seed,
                             _SMALL.max_trace_instructions)
        second = expand_warps(cfg, num_warps, seed,
                              _SMALL.max_trace_instructions)
        for a, b in zip(first, second):
            assert a.warp_id == b.warp_id
            assert [i.uid for i in a.instructions] == [
                i.uid for i in b.instructions
            ]

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_expansion_terminates_within_budget(self, seed):
        cfg = generate_cfg(seed, _SMALL)
        for warp in expand_warps(cfg, 2, seed,
                                 _SMALL.max_trace_instructions):
            assert len(warp.instructions) <= _SMALL.max_trace_instructions

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_plain_and_hinted_expansions_share_control_flow(self, seed):
        """Hint compilation must not change the dynamic path (uids)."""
        case = generate_case(seed, _SMALL)
        for plain, hinted in zip(case.plain, case.hinted):
            assert plain.warp_id == hinted.warp_id
            assert [i.uid for i in plain.instructions] == [
                i.uid for i in hinted.instructions
            ]
        # ... and the hinted expansion actually carries the hint bits of
        # the compiled CFG (same objects, by uid).
        hints = {
            inst.uid: inst.hint
            for block in case.cfg
            for inst in block.instructions
        }
        for warp in case.hinted:
            for inst in warp.instructions:
                assert inst.hint == hints[inst.uid]

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_case_parameters_in_range(self, seed):
        case = generate_case(seed, _SMALL)
        assert 1 <= case.num_warps <= _SMALL.max_warps
        assert case.window in _SMALL.windows
        assert 0 <= case.memory_seed < (1 << 16)
        assert case.trace_for(hinted=True) is case.hinted
        assert case.trace_for(hinted=False) is case.plain

    def test_default_config_is_the_module_default(self):
        assert generate_cfg(7).name == generate_cfg(
            7, DEFAULT_CONFIG).name
