"""Tests for the synthetic kernel generator."""


import pytest

from repro.core.window import read_bypass_counts
from repro.errors import KernelError
from repro.kernels.synthetic import (
    IdiomWeights,
    SyntheticKernelSpec,
    generate_compiled_trace,
    generate_kernel,
    generate_trace,
)


def spec(**kwargs):
    defaults = dict(name="test", num_warps=2, loop_iterations=6)
    defaults.update(kwargs)
    return SyntheticKernelSpec(**defaults)


class TestSpecValidation:
    def test_rejects_tiny_register_pool(self):
        with pytest.raises(KernelError):
            spec(num_registers=3)

    def test_rejects_bad_body(self):
        with pytest.raises(KernelError):
            spec(body_instructions=2)

    def test_rejects_bad_locality(self):
        with pytest.raises(KernelError):
            spec(locality=1.5)

    def test_rejects_bad_source_cap(self):
        with pytest.raises(KernelError):
            spec(max_source_operands=4)

    def test_scaled_changes_iterations(self):
        assert spec(loop_iterations=20).scaled(0.5).loop_iterations == 10
        assert spec(loop_iterations=20).scaled(0.01).loop_iterations == 1


class TestGeneration:
    def test_deterministic_in_seed(self):
        first = generate_trace(spec(seed=9))
        second = generate_trace(spec(seed=9))
        for w1, w2 in zip(first, second):
            assert [str(i) for i in w1] == [str(i) for i in w2]

    def test_different_seeds_differ(self):
        first = generate_trace(spec(seed=1))
        second = generate_trace(spec(seed=2))
        assert [str(i) for i in first.warps[0]] != [str(i) for i in second.warps[0]]

    def test_warps_diverge(self):
        trace = generate_trace(spec(num_warps=4))
        lengths = {len(w) for w in trace}
        assert len(lengths) > 1  # different trip counts per warp

    def test_body_size_respected(self):
        cfg = generate_kernel(spec(body_instructions=50))
        body = cfg.blocks["body"].instructions
        assert 50 <= len(body) <= 70  # idioms may overshoot slightly

    def test_max_source_operands_cap(self):
        trace = generate_trace(spec(max_source_operands=2))
        assert all(
            len(inst.sources) <= 2 for warp in trace for inst in warp
        )

    def test_register_ids_within_pool(self):
        trace = generate_trace(spec(num_registers=12))
        for warp in trace:
            assert all(r < 12 for r in warp.registers_used())

    def test_contains_memory_and_branches(self):
        trace = generate_trace(spec())
        warp = trace.warps[0]
        assert warp.num_memory > 0
        assert any(inst.is_branch for inst in warp)

    def test_zero_weight_idiom_absent(self):
        weights = IdiomWeights(sfu=0.0, store=0.0, accumulate_chain=5.0,
                               address_load=0.0, load_use=0.0,
                               compute_mix=1.0, far_read=1.0, three_src=0.0)
        trace = generate_trace(spec(weights=weights))
        names = {inst.opcode.name for warp in trace for inst in warp}
        assert "rcp" not in names and "sqrt" not in names

    def test_locality_knob_monotone(self):
        # Higher locality => more bypassable reads at IW=3.
        def bypass(locality):
            trace = generate_trace(spec(locality=locality, seed=3))
            hits, total = read_bypass_counts(trace.warps[0].instructions, 3)
            return hits / total

        low, high = bypass(0.2), bypass(1.0)
        assert high > low + 0.1


class TestCompiledTrace:
    def test_hints_present(self):
        from repro.isa import WritebackHint

        trace = generate_compiled_trace(spec(), window_size=3)
        hints = {
            inst.hint
            for warp in trace
            for inst in warp
            if inst.dest is not None
        }
        # A realistic kernel exercises all three writeback targets.
        assert WritebackHint.OC_ONLY in hints
        assert WritebackHint.RF_ONLY in hints

    def test_same_instruction_stream_as_uncompiled(self):
        plain = generate_trace(spec(seed=5))
        hinted = generate_compiled_trace(spec(seed=5), window_size=3)
        for w1, w2 in zip(plain, hinted):
            assert len(w1) == len(w2)
            for a, b in zip(w1, w2):
                assert a.opcode.name == b.opcode.name
                assert a.dest == b.dest
                assert a.sources == b.sources
