"""Tests for kernel control-flow graphs and trace expansion."""

import random

import pytest

from repro.errors import KernelError
from repro.isa import parse_program
from repro.kernels.cfg import (
    BasicBlock,
    Edge,
    KernelCFG,
    loop_kernel,
    straightline_kernel,
)


def insts(text):
    return parse_program(text)


def diamond_cfg():
    """entry -> {left, right} -> exit."""
    return KernelCFG(
        name="diamond",
        blocks=[
            BasicBlock("entry", insts("mov.u32 $r1, 0x1"),
                       [Edge("left", 0.5), Edge("right", 0.5)]),
            BasicBlock("left", insts("add.u32 $r2, $r1, $r1"), [Edge("exit")]),
            BasicBlock("right", insts("sub.u32 $r2, $r1, $r1"), [Edge("exit")]),
            BasicBlock("exit", insts("exit")),
        ],
        entry="entry",
    )


class TestValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(KernelError):
            KernelCFG("bad", [BasicBlock("a"), BasicBlock("a")], entry="a")

    def test_missing_entry_rejected(self):
        with pytest.raises(KernelError):
            KernelCFG("bad", [BasicBlock("a")], entry="nope")

    def test_dangling_edge_rejected(self):
        with pytest.raises(KernelError):
            KernelCFG("bad", [BasicBlock("a", [], [Edge("ghost")])], entry="a")

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(KernelError):
            BasicBlock("a", [], [Edge("x", 0.5), Edge("y", 0.4)]).validate()

    def test_more_than_two_successors_rejected(self):
        block = BasicBlock("a", [], [Edge("x"), Edge("y"), Edge("z")])
        with pytest.raises(KernelError):
            block.validate()

    def test_edge_probability_bounds(self):
        with pytest.raises(KernelError):
            Edge("x", 1.5)


class TestStructure:
    def test_successors_predecessors(self):
        cfg = diamond_cfg()
        assert set(cfg.successors("entry")) == {"left", "right"}
        assert cfg.predecessors("exit") == ["left", "right"] or \
            set(cfg.predecessors("exit")) == {"left", "right"}

    def test_static_instructions_entry_first(self):
        cfg = diamond_cfg()
        static = cfg.static_instructions
        assert static[0].opcode.name == "mov"
        assert len(static) == 4

    def test_len_and_iter(self):
        cfg = diamond_cfg()
        assert len(cfg) == 4
        assert {b.label for b in cfg} == {"entry", "left", "right", "exit"}


class TestExpansion:
    def test_straightline_expansion(self):
        kernel = straightline_kernel("flat", insts("mov.u32 $r1, 0x1\nexit"))
        trace = kernel.expand_trace(random.Random(0))
        assert [i.opcode.name for i in trace] == ["mov", "exit"]

    def test_diamond_takes_one_side(self):
        trace = diamond_cfg().expand_trace(random.Random(1))
        names = [i.opcode.name for i in trace]
        assert names[0] == "mov"
        assert names[-1] == "exit"
        assert len(names) == 3  # entry + one side + exit

    def test_expansion_deterministic_in_seed(self):
        cfg = diamond_cfg()
        first = cfg.expand_trace(random.Random(42))
        second = cfg.expand_trace(random.Random(42))
        assert [i.uid for i in first] == [i.uid for i in second]

    def test_max_instructions_truncates(self):
        body = insts("add.u32 $r1, $r1, $r1") * 10
        kernel = straightline_kernel("long", body)
        trace = kernel.expand_trace(random.Random(0), max_instructions=4)
        assert len(trace) == 4

    def test_runaway_loop_detected(self):
        cfg = KernelCFG(
            "spin",
            [BasicBlock("a", insts("add.u32 $r1, $r1, $r1"),
                        [Edge("a")], max_visits=10)],
            entry="a",
        )
        with pytest.raises(KernelError):
            cfg.expand_trace(random.Random(0))


class TestLoopKernel:
    def test_loop_shape(self):
        kernel = loop_kernel(
            "loop",
            preamble=insts("mov.u32 $r1, 0x0"),
            body=insts("add.u32 $r1, $r1, $r1"),
            epilogue=insts("exit"),
            iterations=5,
        )
        assert set(kernel.blocks) == {"entry", "body", "exit"}

    def test_expected_trip_count(self):
        kernel = loop_kernel("loop", [], insts("add.u32 $r1, $r1, $r1"),
                             [], iterations=8)
        lengths = [
            len(kernel.expand_trace(random.Random(seed)))
            for seed in range(200)
        ]
        mean = sum(lengths) / len(lengths)
        assert 5 <= mean <= 12  # expected 8 body visits

    def test_rejects_zero_iterations(self):
        with pytest.raises(KernelError):
            loop_kernel("bad", [], insts("exit"), [], iterations=0)
