"""Tests for trace serialization."""

import json

import pytest

from repro.errors import KernelError
from repro.isa import WritebackHint, parse_program
from repro.kernels.serialize import (
    FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.kernels.suites import build_benchmark_trace
from repro.kernels.trace import KernelTrace, WarpTrace


def small_trace():
    program = parse_program("""
        mov.u32 $r1, 0x1
        add.u32 $r2, $r1, $r1
        set.ne.s32.s32 $p0/$o127, $r1, $r2
        @$p0 st.global.u32 [$r3], $r2
        exit
    """)
    return KernelTrace(name="small", warps=[
        WarpTrace(0, list(program)),
        WarpTrace(1, list(program)),
    ])


class TestRoundtrip:
    def test_structure_preserved(self):
        trace = small_trace()
        back = trace_from_dict(trace_to_dict(trace))
        assert back.name == "small"
        assert back.num_warps == 2
        for original, loaded in zip(trace, back):
            assert len(original) == len(loaded)
            for a, b in zip(original, loaded):
                assert a.opcode.name == b.opcode.name
                assert a.dest == b.dest
                assert a.sources == b.sources
                assert a.immediate == b.immediate
                assert a.predicate == b.predicate
                assert a.pred_dest == b.pred_dest
                assert a.hint == b.hint

    def test_hints_preserved(self):
        program = [
            inst.with_hint(WritebackHint.OC_ONLY) if inst.dest else inst
            for inst in parse_program("mov.u32 $r1, 0x1\nexit")
        ]
        trace = KernelTrace(name="h", warps=[WarpTrace(0, program)])
        back = trace_from_dict(trace_to_dict(trace))
        assert back.warps[0][0].hint is WritebackHint.OC_ONLY

    def test_shared_instructions_stay_shared(self):
        # Loop-expanded traces reference the same static instruction
        # many times; the pool keeps that sharing.
        trace = build_benchmark_trace("BFS", num_warps=2, scale=0.1)
        data = trace_to_dict(trace)
        assert len(data["pool"]) < trace.total_instructions
        back = trace_from_dict(data)
        uids = {}
        for warp_in, warp_out in zip(trace, back):
            for inst_in, inst_out in zip(warp_in, warp_out):
                uids.setdefault(inst_in.uid, set()).add(inst_out.uid)
        # Every original uid maps to exactly one reloaded uid.
        assert all(len(mapped) == 1 for mapped in uids.values())

    def test_file_roundtrip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.total_instructions == trace.total_instructions

    def test_simulations_agree_after_reload(self, tmp_path):
        from repro.core.bow_sm import simulate_design

        trace = build_benchmark_trace("NW", num_warps=3, scale=0.1)
        path = tmp_path / "nw.json"
        save_trace(trace, path)
        reloaded = load_trace(path)
        first = simulate_design("bow", trace, memory_seed=4)
        second = simulate_design("bow", reloaded, memory_seed=4)
        assert first.counters.cycles == second.counters.cycles
        assert first.memory_image == second.memory_image


class TestErrors:
    def test_version_checked(self):
        data = trace_to_dict(small_trace())
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(KernelError):
            trace_from_dict(data)

    def test_malformed_record(self):
        with pytest.raises(KernelError):
            trace_from_dict({"version": FORMAT_VERSION, "name": "x",
                             "pool": [{}], "warps": []})

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(KernelError):
            load_trace(path)

    def test_bad_pool_index(self):
        data = trace_to_dict(small_trace())
        data["warps"][0]["instructions"] = [999]
        with pytest.raises(KernelError):
            trace_from_dict(data)


class TestResultRoundTrip:
    def _run(self):
        from repro.core.bow_sm import simulate_design

        trace = build_benchmark_trace("NW", num_warps=2, scale=0.1)
        return simulate_design("bow", trace, window_size=3, memory_seed=4)

    def test_dict_round_trip_equality(self):
        from repro.kernels.serialize import result_from_dict, result_to_dict

        result = self._run()
        assert result_from_dict(result_to_dict(result)) == result

    def test_file_round_trip_equality(self, tmp_path):
        from repro.kernels.serialize import load_result, save_result

        result = self._run()
        path = tmp_path / "run.json"
        save_result(result, path)
        assert load_result(path) == result

    def test_encoding_is_canonical(self):
        import json

        from repro.kernels.serialize import result_to_dict

        result = self._run()
        assert (json.dumps(result_to_dict(result))
                == json.dumps(result_to_dict(self._run())))

    def test_version_checked(self):
        from repro.kernels.serialize import (
            RESULT_FORMAT_VERSION,
            result_from_dict,
            result_to_dict,
        )

        data = result_to_dict(self._run())
        data["version"] = RESULT_FORMAT_VERSION + 1
        with pytest.raises(KernelError):
            result_from_dict(data)

    def test_unknown_counter_rejected(self):
        from repro.kernels.serialize import result_from_dict, result_to_dict

        data = result_to_dict(self._run())
        data["counters"]["flux_capacitor"] = 1
        with pytest.raises(KernelError):
            result_from_dict(data)

    def test_not_json(self, tmp_path):
        from repro.kernels.serialize import load_result

        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(KernelError):
            load_result(path)
