"""Tests pinning the Figure 6 BTREE snippet to the paper's listing."""

from repro.isa.registers import SINK_REGISTER
from repro.kernels.snippets import btree_snippet


class TestBtreeSnippet:
    def test_thirteen_instructions(self, snippet):
        assert len(snippet) == 13

    def test_opcode_sequence(self, snippet):
        names = [i.opcode.name for i in snippet]
        assert names == [
            "ld.global", "mov", "mul", "mad", "shl", "mad", "add", "add",
            "add", "ld.global", "shl", "add", "set.ne",
        ]

    def test_destination_sequence(self, snippet):
        # Paper lines 2..14: r3, r2, r1, r1, r1, r0, r0, r0, r1, r2, r2, r4, p0.
        dests = [i.dest.id for i in snippet]
        assert dests[:12] == [3, 2, 1, 1, 1, 0, 0, 0, 1, 2, 2, 4]
        assert snippet[12].dest == SINK_REGISTER

    def test_r3_defined_line2_used_line14(self, snippet):
        assert snippet[0].dest.id == 3
        assert 3 in [s.id for s in snippet[12].sources]

    def test_fresh_instances_each_call(self):
        first = btree_snippet()
        second = btree_snippet()
        assert [i.uid for i in first] != [i.uid for i in second]

    def test_memory_instructions(self, snippet):
        loads = [i for i in snippet if i.is_load]
        assert len(loads) == 2  # lines 2 and 11
