"""Tests for register and predicate value types."""

import pytest

from repro.errors import IsaError
from repro.isa.registers import (
    MAX_PREDICATE_ID,
    MAX_REGISTER_ID,
    SINK_REGISTER,
    Predicate,
    Register,
    reg,
)


class TestRegister:
    def test_str_rendering(self):
        assert str(Register(3)) == "$r3"

    def test_equality_and_hash(self):
        assert Register(5) == Register(5)
        assert hash(Register(5)) == hash(Register(5))
        assert Register(5) != Register(6)

    def test_ordering(self):
        assert Register(1) < Register(2)
        assert sorted([Register(3), Register(1)]) == [Register(1), Register(3)]

    def test_int_conversion(self):
        assert int(Register(9)) == 9

    def test_bounds(self):
        Register(0)
        Register(MAX_REGISTER_ID)
        with pytest.raises(IsaError):
            Register(-1)
        with pytest.raises(IsaError):
            Register(MAX_REGISTER_ID + 1)

    def test_reg_shorthand(self):
        assert reg(4) == Register(4)

    def test_sink_register_is_max_id(self):
        assert SINK_REGISTER.id == MAX_REGISTER_ID


class TestPredicate:
    def test_str_rendering(self):
        assert str(Predicate(0)) == "$p0"
        assert str(Predicate(2, negated=True)) == "!$p2"

    def test_bounds(self):
        Predicate(MAX_PREDICATE_ID)
        with pytest.raises(IsaError):
            Predicate(MAX_PREDICATE_ID + 1)
        with pytest.raises(IsaError):
            Predicate(-1)
