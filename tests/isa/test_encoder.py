"""Tests for the 64-bit instruction encoding (including hint bits)."""

import pytest

from repro.errors import EncodingError
from repro.isa import (
    Instruction,
    WritebackHint,
    decode_instruction,
    encode_instruction,
)
from repro.isa.encoder import decode_program, encode_program
from repro.isa.opcodes import OPCODE_TABLE, opcode_by_name
from repro.isa.registers import Predicate, Register
from repro.kernels.snippets import btree_snippet


def roundtrip(inst):
    return decode_instruction(encode_instruction(inst))


class TestRoundtrip:
    def test_simple_alu(self):
        inst = Instruction(opcode=opcode_by_name("add"), dest=Register(1),
                           sources=(Register(2), Register(3)))
        back = roundtrip(inst)
        assert back.opcode.name == "add"
        assert back.dest == Register(1)
        assert back.sources == (Register(2), Register(3))

    def test_store_no_dest(self):
        inst = Instruction(opcode=opcode_by_name("st.global"),
                           sources=(Register(4), Register(5)))
        back = roundtrip(inst)
        assert back.dest is None
        assert back.sources == (Register(4), Register(5))

    def test_immediate_low_16_bits(self):
        inst = Instruction(opcode=opcode_by_name("mov"), dest=Register(1),
                           sources=(Register(2),), immediate=0xABCD)
        assert roundtrip(inst).immediate == 0xABCD

    def test_immediate_truncated_to_16_bits(self):
        inst = Instruction(opcode=opcode_by_name("mov"), dest=Register(1),
                           sources=(Register(2),), immediate=0x12345)
        assert roundtrip(inst).immediate == 0x2345

    def test_predicate(self):
        inst = Instruction(opcode=opcode_by_name("add"), dest=Register(1),
                           sources=(Register(2), Register(3)),
                           predicate=Predicate(3, negated=True))
        back = roundtrip(inst)
        assert back.predicate == Predicate(3, negated=True)

    def test_pred_dest_roundtrip(self):
        from repro.isa import parse_instruction

        inst = parse_instruction("set.ne.s32.s32 $p2/$o127, $r3, $r1")
        back = roundtrip(inst)
        assert back.pred_dest == Predicate(2)
        assert back.dest == inst.dest  # the sink register

    def test_pred_dest_and_immediate_conflict(self):
        from repro.isa import parse_instruction

        inst = parse_instruction("set.ne.s32.s32 $p0/$o127, $r3, $r1")
        conflicted = inst.__class__(
            opcode=inst.opcode, dest=inst.dest, sources=inst.sources,
            immediate=0x10, pred_dest=inst.pred_dest,
        )
        with pytest.raises(EncodingError):
            encode_instruction(conflicted)

    @pytest.mark.parametrize("hint", list(WritebackHint))
    def test_hint_bits_roundtrip(self, hint):
        # The 2 writeback-hint bits of BOW-WR (paper SS IV-B).
        inst = Instruction(opcode=opcode_by_name("add"), dest=Register(1),
                           sources=(Register(2), Register(3)), hint=hint)
        assert roundtrip(inst).hint is hint

    def test_every_opcode_roundtrips(self):
        for name, opcode in OPCODE_TABLE.items():
            sources = tuple(Register(i + 1) for i in range(opcode.num_sources))
            dest = Register(0) if opcode.has_dest else None
            inst = Instruction(opcode=opcode, dest=dest, sources=sources)
            back = roundtrip(inst)
            assert back.opcode.name == name
            assert back.sources == sources
            assert back.dest == dest

    def test_btree_snippet_roundtrips(self):
        program = btree_snippet()
        back = decode_program(encode_program(program))
        assert len(back) == len(program)
        for original, decoded in zip(program, back):
            assert decoded.opcode.name == original.opcode.name
            assert decoded.dest == original.dest
            assert decoded.sources == original.sources


class TestErrors:
    def test_decode_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            decode_instruction(-1)
        with pytest.raises(EncodingError):
            decode_instruction(1 << 64)

    def test_decode_rejects_unknown_opcode_index(self):
        with pytest.raises(EncodingError):
            decode_instruction(0xFF)  # opcode index 255 does not exist

    def test_word_fits_64_bits(self):
        inst = Instruction(opcode=opcode_by_name("mad"), dest=Register(255),
                           sources=(Register(255), Register(254), Register(253)),
                           immediate=0xFFFF, predicate=Predicate(7, negated=True),
                           hint=WritebackHint.RF_ONLY)
        word = encode_instruction(inst)
        assert 0 <= word < (1 << 64)
