"""Tests for the SASS-like assembler."""

import pytest

from repro.errors import ParseError
from repro.isa import MemSpace, parse_instruction, parse_program
from repro.isa.registers import SINK_REGISTER


class TestBasics:
    def test_blank_and_comment_lines(self):
        assert parse_instruction("") is None
        assert parse_instruction("   // just a comment") is None
        assert parse_instruction("; ") is None

    def test_simple_add(self):
        inst = parse_instruction("add.u32 $r1, $r2, $r3;")
        assert inst.opcode.name == "add"
        assert inst.dest.id == 1
        assert [s.id for s in inst.sources] == [2, 3]

    def test_trailing_semicolon_optional(self):
        assert parse_instruction("mov.u32 $r1, $r2") is not None

    def test_inline_comment_stripped(self):
        inst = parse_instruction("add.u32 $r1, $r2, $r3 // sum")
        assert inst.opcode.name == "add"


class TestSuffixStripping:
    def test_wide_u16(self):
        assert parse_instruction("mad.wide.u16 $r1, $r0, $r2, $r1").opcode.name == "mad"

    def test_half_u32(self):
        assert parse_instruction("add.half.u32 $r0, $r9, $r0").opcode.name == "add"

    def test_memory_keeps_space(self):
        inst = parse_instruction("ld.global.u32 $r3, [$r8]")
        assert inst.opcode.name == "ld.global"
        assert inst.mem_space is MemSpace.GLOBAL

    def test_set_ne_keeps_condition(self):
        inst = parse_instruction("set.ne.s32.s32 $p0/$o127, $r3, $r1")
        assert inst.opcode.name == "set.ne"

    def test_case_insensitive_mnemonic(self):
        assert parse_instruction("Shl.u32 $r2, $r2, 0x100").opcode.name == "shl"


class TestOperands:
    def test_register_halves_read_whole_register(self):
        inst = parse_instruction("mul.wide.u16 $r1, $r0.lo, $r2.hi")
        assert [s.id for s in inst.sources] == [0, 2]

    def test_memory_operand(self):
        inst = parse_instruction("ld.global.u32 $r3, [$r8]")
        assert [s.id for s in inst.sources] == [8]

    def test_memory_operand_with_offset(self):
        inst = parse_instruction("ld.global.u32 $r3, [$r8+0x10]")
        assert [s.id for s in inst.sources] == [8]

    def test_hex_immediate(self):
        inst = parse_instruction("mov.u32 $r2, 0x00000ff4")
        assert inst.immediate == 0xFF4

    def test_decimal_immediate(self):
        assert parse_instruction("mov.u32 $r2, 42").immediate == 42

    def test_shared_space_immediate(self):
        # s[0x18] is a shared-memory constant: an immediate, not an RF read.
        inst = parse_instruction("add.half.u32 $r0, s[0x0018], $r0")
        assert inst.immediate == 0x18
        assert [s.id for s in inst.sources] == [0]

    def test_predicate_dest_maps_to_sink(self):
        inst = parse_instruction("set.ne.s32.s32 $p0/$o127, $r3, $r1")
        assert inst.dest == SINK_REGISTER
        assert [s.id for s in inst.sources] == [3, 1]

    def test_store_operands(self):
        inst = parse_instruction("st.global.u32 [$r4], $r5")
        assert inst.dest is None
        assert [s.id for s in inst.sources] == [4, 5]


class TestPredicateGuards:
    def test_positive_guard(self):
        inst = parse_instruction("@$p1 add.u32 $r1, $r2, $r3")
        assert inst.predicate.id == 1
        assert not inst.predicate.negated

    def test_negated_guard(self):
        inst = parse_instruction("@!$p2 bra 0x40")
        assert inst.predicate.negated

    def test_malformed_guard(self):
        with pytest.raises(ParseError):
            parse_instruction("@$q1 add.u32 $r1, $r2, $r3")


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_instruction("frob.u32 $r1, $r2")

    def test_unknown_operand(self):
        with pytest.raises(ParseError):
            parse_instruction("add.u32 $r1, %weird, $r2")

    def test_too_many_sources(self):
        with pytest.raises(ParseError):
            parse_instruction("mov.u32 $r1, $r2, $r3, $r4")

    def test_missing_destination(self):
        with pytest.raises(ParseError):
            parse_instruction("add.u32")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("mov.u32 $r1, $r2\nbogus.u32 $r1\n")
        assert excinfo.value.line_number == 2


class TestPrograms:
    def test_parse_program_skips_blanks(self):
        program = parse_program("""
            // header comment
            mov.u32 $r1, 0x1;

            add.u32 $r2, $r1, $r1;
        """)
        assert [i.opcode.name for i in program] == ["mov", "add"]

    def test_program_order_preserved(self):
        program = parse_program("mov.u32 $r1, 0x1\nexit\n")
        assert [i.opcode.name for i in program] == ["mov", "exit"]


class TestMoreEdgeCases:
    def test_bar_sync(self):
        inst = parse_instruction("bar.sync")
        assert inst.opcode.name == "bar.sync"
        assert inst.is_control

    def test_pred_dest_recorded(self):
        inst = parse_instruction("set.lt.s32.s32 $p3/$o127, $r1, $r2")
        assert inst.pred_dest.id == 3
        assert inst.dest == SINK_REGISTER

    def test_guard_plus_pred_dest(self):
        inst = parse_instruction("@!$p0 set.ne.s32.s32 $p1/$o127, $r1, $r2")
        assert inst.predicate.id == 0 and inst.predicate.negated
        assert inst.pred_dest.id == 1

    def test_store_with_offset_address(self):
        inst = parse_instruction("st.global.u32 [$r4+0x20], $r5")
        assert [s.id for s in inst.sources] == [4, 5]

    def test_constant_space_operand(self):
        inst = parse_instruction("add.u32 $r1, c[0x8], $r2")
        assert inst.immediate == 8
        assert [s.id for s in inst.sources] == [2]

    def test_whitespace_tolerance(self):
        inst = parse_instruction("   add.u32   $r1 ,  $r2 ,$r3  ;  ")
        assert [s.id for s in inst.sources] == [2, 3]

    def test_rendering_roundtrip_via_parser(self):
        # str() output of a parsed instruction parses back equivalently.
        from repro.isa import parse_program

        for line in ("add.u32 $r1, $r2, $r3",
                     "ld.global.u32 $r3, [$r8]",
                     "set.ne.s32.s32 $p0/$o127, $r3, $r1"):
            first = parse_instruction(line)
            second = parse_instruction(str(first))
            assert second.opcode.name == first.opcode.name
            assert second.sources == first.sources
            assert second.dest == first.dest
            assert second.pred_dest == first.pred_dest
