"""Tests for the Instruction value type."""

import pytest

from repro.errors import IsaError
from repro.isa import Instruction, MemSpace, WritebackHint
from repro.isa.opcodes import opcode_by_name
from repro.isa.registers import Predicate, Register


def make(name, dest=None, sources=(), imm=None, pred=None):
    return Instruction(
        opcode=opcode_by_name(name),
        dest=Register(dest) if dest is not None else None,
        sources=tuple(Register(s) for s in sources),
        immediate=imm,
        predicate=pred,
    )


class TestValidation:
    def test_requires_dest_when_opcode_writes(self):
        with pytest.raises(IsaError):
            make("add", dest=None, sources=(1, 2))

    def test_rejects_dest_on_store(self):
        with pytest.raises(IsaError):
            make("st.global", dest=1, sources=(2, 3))

    def test_rejects_too_many_sources(self):
        with pytest.raises(IsaError):
            make("mov", dest=1, sources=(2, 3))

    def test_accepts_fewer_sources_than_max(self):
        # An immediate can substitute for a register source.
        inst = make("add", dest=1, sources=(2,), imm=4)
        assert inst.num_register_operands == 1


class TestClassification:
    def test_memory_flags(self):
        load = make("ld.global", dest=1, sources=(2,))
        store = make("st.shared", sources=(1, 2))
        assert load.is_memory and load.is_load and not load.is_store
        assert store.is_memory and store.is_store and not store.is_load

    def test_mem_space(self):
        assert make("ld.global", dest=1, sources=(2,)).mem_space is MemSpace.GLOBAL
        assert make("st.shared", sources=(1, 2)).mem_space is MemSpace.SHARED
        assert make("add", dest=1, sources=(2, 3)).mem_space is None

    def test_branch_flags(self):
        assert make("bra", imm=0).is_branch
        assert make("bra", imm=0).is_control
        assert not make("ret").is_branch
        assert make("ret").is_control

    def test_uses_and_defs(self):
        inst = make("mad", dest=1, sources=(2, 3, 4))
        assert [r.id for r in inst.uses] == [2, 3, 4]
        assert [r.id for r in inst.defs] == [1]
        assert [r.id for r in inst.accessed_registers()] == [2, 3, 4, 1]

    def test_store_has_no_defs(self):
        assert make("st.global", sources=(1, 2)).defs == ()


class TestHints:
    def test_default_hint_is_both(self):
        assert make("add", dest=1, sources=(2, 3)).hint is WritebackHint.BOTH

    def test_with_hint_preserves_uid(self):
        inst = make("add", dest=1, sources=(2, 3))
        hinted = inst.with_hint(WritebackHint.OC_ONLY)
        assert hinted.uid == inst.uid
        assert hinted.hint is WritebackHint.OC_ONLY
        assert inst.hint is WritebackHint.BOTH  # original untouched

    def test_renumbered_gets_fresh_uid(self):
        inst = make("add", dest=1, sources=(2, 3))
        assert inst.renumbered().uid != inst.uid

    def test_uids_unique(self):
        a = make("add", dest=1, sources=(2, 3))
        b = make("add", dest=1, sources=(2, 3))
        assert a.uid != b.uid

    def test_hint_bits_roundtrip(self):
        for hint in WritebackHint:
            assert WritebackHint.from_bits(*hint.bits) is hint

    def test_invalid_hint_bits(self):
        with pytest.raises(IsaError):
            WritebackHint.from_bits(False, False)

    def test_hint_bit_meanings(self):
        assert WritebackHint.OC_ONLY.to_oc and not WritebackHint.OC_ONLY.to_rf
        assert WritebackHint.RF_ONLY.to_rf and not WritebackHint.RF_ONLY.to_oc
        assert WritebackHint.BOTH.to_oc and WritebackHint.BOTH.to_rf


class TestRendering:
    def test_str_with_operands(self):
        inst = make("add", dest=1, sources=(2, 3))
        assert str(inst) == "add $r1, $r2, $r3"

    def test_str_with_immediate(self):
        inst = make("mov", dest=1, sources=(2,), imm=0x10)
        assert "0x00000010" in str(inst)

    def test_str_with_predicate(self):
        inst = Instruction(
            opcode=opcode_by_name("add"),
            dest=Register(1),
            sources=(Register(2), Register(3)),
            predicate=Predicate(0, negated=True),
        )
        assert str(inst).startswith("@!$p0 add")
