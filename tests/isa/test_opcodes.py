"""Tests for the opcode table and instruction semantics."""

import pytest

from repro.errors import IsaError
from repro.isa.opcodes import OPCODE_TABLE, OpClass, opcode_by_name


class TestTable:
    def test_lookup_known(self):
        assert opcode_by_name("add").name == "add"

    def test_lookup_unknown_raises(self):
        with pytest.raises(IsaError):
            opcode_by_name("frobnicate")

    def test_memory_ops_classified(self):
        assert opcode_by_name("ld.global").op_class is OpClass.MEM_LOAD
        assert opcode_by_name("st.shared").op_class is OpClass.MEM_STORE
        assert opcode_by_name("ld.global").op_class.is_memory
        assert not opcode_by_name("add").op_class.is_memory

    def test_control_ops_classified(self):
        for name in ("bra", "ret", "exit", "ssy", "bar.sync"):
            assert opcode_by_name(name).op_class.is_control

    def test_stores_have_no_dest(self):
        for name in ("st.global", "st.shared", "st.local"):
            assert not opcode_by_name(name).has_dest

    def test_loads_have_dest(self):
        for name in ("ld.global", "ld.shared", "ld.local"):
            assert opcode_by_name(name).has_dest

    def test_source_counts_at_most_three(self):
        # SASS instructions carry at most 3 register sources (paper SS II).
        assert all(0 <= op.num_sources <= 3 for op in OPCODE_TABLE.values())

    def test_three_source_ops(self):
        assert opcode_by_name("mad").num_sources == 3
        assert opcode_by_name("sel").num_sources == 3


class TestSemantics:
    def _run(self, name, a=0, b=0, c=0):
        return opcode_by_name(name).semantic(a, b, c)

    def test_add_wraps_32_bits(self):
        assert self._run("add", 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert self._run("sub", 0, 1) == 0xFFFFFFFF

    def test_mul(self):
        assert self._run("mul", 7, 6) == 42

    def test_mad(self):
        assert self._run("mad", 3, 4, 5) == 17

    def test_mov_passes_first(self):
        assert self._run("mov", 99, 1, 2) == 99

    def test_logic_ops(self):
        assert self._run("and", 0b1100, 0b1010) == 0b1000
        assert self._run("or", 0b1100, 0b1010) == 0b1110
        assert self._run("xor", 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_count(self):
        assert self._run("shl", 1, 33) == 2  # count masked to 5 bits
        assert self._run("shr", 4, 1) == 2

    def test_min_max_signed(self):
        negative_one = 0xFFFFFFFF
        assert self._run("min", negative_one, 1) == negative_one
        assert self._run("max", negative_one, 1) == 1

    def test_set_ne(self):
        assert self._run("set.ne", 1, 2) == 1
        assert self._run("set.ne", 2, 2) == 0

    def test_set_lt_signed(self):
        assert self._run("set.lt", 0xFFFFFFFF, 0) == 1  # -1 < 0

    def test_sel(self):
        assert self._run("sel", 1, 10, 20) == 10
        assert self._run("sel", 0, 10, 20) == 20

    def test_rcp_of_zero_saturates(self):
        assert self._run("rcp", 0) == 0xFFFFFFFF

    def test_sqrt(self):
        assert self._run("sqrt", 16) == 4

    def test_semantics_stay_in_32_bits(self):
        for name in ("add", "mul", "mad", "shl", "xor"):
            value = self._run(name, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF)
            assert 0 <= value <= 0xFFFFFFFF

    def test_memory_and_control_have_no_semantic(self):
        assert opcode_by_name("ld.global").semantic is None
        assert opcode_by_name("bra").semantic is None
