"""CLI surface of ``repro fuzz`` and ``repro trace-import``.

Exit-code conventions (matching the rest of the CLI): ``2`` for bad
arguments, ``1`` for runtime errors (missing files, unknown designs),
``4`` for a differential mismatch, ``0`` for a clean run.
"""

from pathlib import Path

from repro.cli import main

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

FAST = ["--cases", "2"]


class TestFuzzArguments:
    def test_zero_cases_rejected(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2
        assert "--cases" in capsys.readouterr().err

    def test_zero_sms_rejected(self, capsys):
        assert main(["fuzz", "--sms", "0", *FAST]) == 2
        assert "--sms" in capsys.readouterr().err

    def test_negative_max_shrink_rejected(self, capsys):
        assert main(["fuzz", "--max-shrink", "-1", *FAST]) == 2
        assert "--max-shrink" in capsys.readouterr().err

    def test_unknown_bug_kind_rejected(self, capsys):
        assert main(["fuzz", "--inject-bug", "bogus", *FAST]) == 2
        assert "--inject-bug" in capsys.readouterr().err

    def test_empty_designs_rejected(self, capsys):
        assert main(["fuzz", "--designs", " , ", *FAST]) == 2
        assert "--designs" in capsys.readouterr().err

    def test_unknown_design_is_runtime_error(self, capsys):
        assert main(["fuzz", "--designs", "nonsense", *FAST]) == 1
        assert "nonsense" in capsys.readouterr().err


class TestFuzzRuns:
    def test_clean_smoke_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "2",
                     "--designs", "baseline,bow-wr"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no mismatches" in out
        assert "2 case(s)" in out

    def test_injected_bug_exits_4_and_writes_corpus(self, tmp_path, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "5",
                     "--inject-bug", "corrupt-writeback",
                     "--corpus-dir", str(tmp_path)])
        assert code == 4
        err = capsys.readouterr().err
        assert "MISMATCH" in err
        assert "minimized to" in err
        written = list(tmp_path.glob("*.jsonl"))
        assert len(written) == 1


class TestTraceImport:
    def test_corpus_case_replays(self, capsys):
        path = CORPUS_DIR / "max-operands.jsonl"
        code = main(["trace-import", str(path), "--design", "baseline",
                     "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "verified against the functional reference" in out

    def test_counters_match_direct_simulation(self, capsys):
        from repro.core.bow_sm import simulate_design
        from repro.kernels.external import load_case

        path = CORPUS_DIR / "divergence-nest.jsonl"
        case = load_case(path)
        direct = simulate_design("baseline", case.trace,
                                 window_size=case.window,
                                 memory_seed=case.memory_seed)
        assert main(["trace-import", str(path),
                     "--design", "baseline"]) == 0
        out = capsys.readouterr().out
        assert f"cycles       {direct.counters.cycles}" in out
        assert f"instructions {direct.counters.instructions}" in out

    def test_multi_sm_header_takes_device_path(self, capsys):
        path = CORPUS_DIR / "zero-trip-loop.jsonl"
        code = main(["trace-import", str(path), "--design", "baseline",
                     "--verify"])
        assert code == 0
        assert "2 SM(s)" in capsys.readouterr().out

    def test_window_and_sms_overrides(self, capsys):
        path = CORPUS_DIR / "max-operands.jsonl"
        code = main(["trace-import", str(path), "--design", "baseline",
                     "--sms", "2", "--window", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IW=4" in out
        assert "2 SM(s)" in out

    def test_bad_sms_rejected(self, capsys):
        path = CORPUS_DIR / "max-operands.jsonl"
        assert main(["trace-import", str(path), "--sms", "0"]) == 2
        assert "--sms" in capsys.readouterr().err

    def test_bad_window_rejected(self, capsys):
        path = CORPUS_DIR / "max-operands.jsonl"
        assert main(["trace-import", str(path), "--window", "-1"]) == 2
        assert "--window" in capsys.readouterr().err

    def test_missing_file_is_runtime_error(self, capsys, tmp_path):
        assert main(["trace-import", str(tmp_path / "nope.jsonl")]) == 1

    def test_malformed_file_is_runtime_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "inst", "warp": 0, "op": "add"}\n')
        assert main(["trace-import", str(bad)]) == 1
