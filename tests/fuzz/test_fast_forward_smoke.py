"""Fuzz-smoke for the fast-forward cross-check (blame attribution).

On any mismatch the campaign re-runs the case with ``fast_forward``
killed before reporting: a clean per-cycle run pins the divergence on
the event-horizon machinery (``FuzzFailure.fast_forward_only``), a
dirty one on the design model.  These tests drive both outcomes — a
seeded provider bug that reproduces either way, and a synthetic
fault injected into the jump path itself that only the fast run can
hit — plus the plain all-designs smoke run CI leans on.
"""

from __future__ import annotations

from repro.fuzz.differential import run_fuzz
from repro.fuzz.generator import FuzzConfig
from repro.gpu.sm import SMEngine

QUICK = FuzzConfig(max_trace_instructions=80, max_warps=3)


class TestCrossCheckSmoke:
    def test_clean_campaign_across_all_designs(self):
        report = run_fuzz(seed=0, cases=2, config=QUICK)
        assert report.ok
        assert report.failure is None

    def test_design_model_bug_is_blamed_on_the_design(self, tmp_path):
        # A seeded operand-path defect mismatches with fast-forward on
        # AND off, so the cross-check must not blame the jump logic.
        report = run_fuzz(seed=0, cases=5, inject_bug="corrupt-deliver",
                          config=QUICK, max_shrink=30,
                          corpus_dir=tmp_path)
        assert not report.ok
        assert report.failure.fast_forward_only is False
        # The attribution travels with the corpus case's metadata.
        assert report.failure.shrink.case.meta["fast_forward_only"] is False

    def test_fast_forward_only_divergence_is_attributed(self, monkeypatch):
        # Fault the jump path itself: a store that only happens when a
        # span is actually skipped.  The per-cycle re-run never calls
        # _apply_fast_forward, comes back clean, and the blame lands on
        # the fast-forward machinery.
        real = SMEngine._apply_fast_forward

        def corrupting(self, span):
            applied = real(self, span)
            if applied:
                self.memory.store(0xDEAD000, 0x1)
            return applied

        monkeypatch.setattr(SMEngine, "_apply_fast_forward", corrupting)
        report = run_fuzz(seed=0, cases=5, designs=("baseline",),
                          config=QUICK, max_shrink=10)
        assert not report.ok
        failure = report.failure
        assert failure.fast_forward_only is True
        assert any(m.kind == "memory" for m in failure.mismatches)
