"""Tests for the differential executor and the fuzz campaign driver."""

import pytest

from repro.errors import SimulationError
from repro.fuzz.differential import (
    FuzzReport,
    case_for,
    compare_case,
    run_fuzz,
)
from repro.fuzz.generator import FuzzConfig, generate_case
from repro.kernels.external import load_case
from repro.testing.bugs import BUG_KINDS

QUICK = FuzzConfig(max_trace_instructions=80, max_warps=3)

ALL_DESIGNS = ("baseline", "bow", "bow-wb", "bow-wr", "bow-wr-half", "rfc")


class TestCompareCase:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_clean_on_every_design(self, design):
        fuzz_case = generate_case(3, QUICK)
        case = case_for(fuzz_case, design)
        assert compare_case(case, design) == []

    def test_clean_on_device_layer(self):
        fuzz_case = generate_case(3, QUICK)
        case = case_for(fuzz_case, "baseline", num_sms=2)
        assert compare_case(case, "baseline") == []

    def test_unknown_design_raises(self):
        fuzz_case = generate_case(3, QUICK)
        case = case_for(fuzz_case, "baseline")
        with pytest.raises(SimulationError):
            compare_case(case, "nonsense")

    def test_hinted_designs_get_hinted_traces(self):
        fuzz_case = generate_case(3, QUICK)
        assert case_for(fuzz_case, "bow-wr").trace is fuzz_case.hinted
        assert case_for(fuzz_case, "baseline").trace is fuzz_case.plain


class TestRunFuzzClean:
    def test_small_clean_campaign(self):
        report = run_fuzz(seed=0, cases=2, config=QUICK)
        assert isinstance(report, FuzzReport)
        assert report.ok
        assert report.failure is None
        assert report.cases == 2
        assert report.runs == 2 * len(report.designs)

    def test_multi_sm_campaign(self):
        report = run_fuzz(seed=0, cases=1, sms=2,
                          designs=("baseline",), config=QUICK)
        assert report.ok
        # Each case runs at num_sms=1 AND num_sms=2.
        assert report.runs == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(SimulationError):
            run_fuzz(cases=0, config=QUICK)
        with pytest.raises(SimulationError):
            run_fuzz(sms=0, config=QUICK)
        with pytest.raises(SimulationError):
            run_fuzz(designs=("nonsense",), config=QUICK)


class TestInjectedBugEndToEnd:
    """The acceptance loop: an injected provider bug must be caught,
    shrunk, and written to the corpus in the documented format."""

    @pytest.mark.parametrize("kind", BUG_KINDS)
    def test_bug_is_caught(self, kind, tmp_path):
        report = run_fuzz(seed=0, cases=5, corpus_dir=tmp_path,
                          inject_bug=kind, config=QUICK)
        assert not report.ok
        failure = report.failure
        assert failure.design == "buggy"
        assert failure.mismatches

    def test_failure_is_shrunk_and_replayable(self, tmp_path):
        report = run_fuzz(seed=0, cases=5, corpus_dir=tmp_path,
                          inject_bug="corrupt-writeback", config=QUICK)
        failure = report.failure
        shrink = failure.shrink
        # Strictly smaller than the generated case, and still failing.
        assert shrink.removed_instructions > 0
        assert failure.corpus_path is not None
        assert failure.corpus_path.exists()
        # The corpus file round-trips through the documented format and
        # carries its provenance.
        replayed = load_case(failure.corpus_path)
        assert replayed.trace.num_warps == shrink.case.trace.num_warps
        assert replayed.meta["fuzz_seed"] == failure.seed
        assert "buggy" in replayed.designs

    def test_no_corpus_dir_still_reports(self):
        report = run_fuzz(seed=0, cases=5, inject_bug="corrupt-deliver",
                          config=QUICK)
        assert not report.ok
        assert report.failure.corpus_path is None
