"""Unit tests for the greedy delta-debugging shrinker."""

from repro.fuzz.shrink import ShrinkResult, shrink_case
from repro.kernels.builder import KernelBuilder
from repro.kernels.external import TraceCase


def _case(num_warps: int = 4, body: int = 16) -> TraceCase:
    b = KernelBuilder("shrink-me")
    for i in range(body):
        b.add(1 + (i % 8), 1 + ((i + 1) % 8), imm=i)
    b.st(addr=1, value=2)
    b.exit()
    return TraceCase(trace=b.trace(num_warps=num_warps), window=2,
                     memory_seed=3)


def _needle(case: TraceCase):
    """The 'bug': any trace containing warp 2's st.global reproduces."""
    def reproduces(candidate: TraceCase) -> bool:
        for warp in candidate.trace:
            if warp.warp_id == 2 and any(
                inst.opcode.name == "st.global"
                for inst in warp.instructions
            ):
                return True
        return False
    return reproduces


class TestShrinkCase:
    def test_minimizes_to_the_needle(self):
        case = _case()
        result = shrink_case(case, _needle(case))
        assert isinstance(result, ShrinkResult)
        assert result.case.trace.num_warps == 1
        assert result.case.trace.total_instructions == 1
        only = next(iter(result.case.trace))
        assert only.warp_id == 2
        assert only.instructions[0].opcode.name == "st.global"

    def test_reports_removal_stats(self):
        case = _case()
        total = case.trace.total_instructions
        result = shrink_case(case, _needle(case))
        assert result.removed_warps == 3
        assert result.removed_instructions == total - 1
        assert result.attempts > 0

    def test_preserves_launch_parameters(self):
        case = _case()
        result = shrink_case(case, _needle(case))
        assert result.case.window == case.window
        assert result.case.memory_seed == case.memory_seed
        assert result.case.num_sms == case.num_sms

    def test_respects_attempt_budget(self):
        case = _case(num_warps=6, body=32)
        result = shrink_case(case, _needle(case), max_attempts=5)
        assert result.attempts <= 5

    def test_keeps_at_least_one_warp_when_nothing_shrinks(self):
        case = _case(num_warps=2, body=2)
        result = shrink_case(case, lambda candidate: True)
        assert result.case.trace.num_warps >= 1

    def test_predicate_exceptions_propagate(self):
        """The shrinker's contract: predicates must not raise.

        The differential harness wraps its predicate so a crashing
        candidate counts as "does not reproduce"; the shrinker itself
        stays transparent to errors.
        """
        import pytest

        case = _case(num_warps=2, body=4)

        def touchy(candidate: TraceCase) -> bool:
            if candidate.trace.num_warps < 2:
                raise RuntimeError("boom")
            return True

        with pytest.raises(RuntimeError):
            shrink_case(case, touchy)
