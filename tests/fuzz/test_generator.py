"""Unit tests for the seed-driven kernel generator."""

import pytest

from repro.errors import KernelError
from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    FuzzConfig,
    generate_case,
    generate_cfg,
    reaches_exit,
)
from repro.isa import WritebackHint

QUICK = FuzzConfig(max_trace_instructions=80, max_warps=3)


class TestGenerateCfg:
    def test_deterministic_in_seed(self):
        a = generate_cfg(11, QUICK)
        b = generate_cfg(11, QUICK)
        assert set(a.blocks) == set(b.blocks)
        for label in a.blocks:
            assert [i.opcode.name for i in a.blocks[label].instructions] == [
                i.opcode.name for i in b.blocks[label].instructions
            ]

    def test_different_seeds_differ(self):
        names = {
            tuple(i.opcode.name for i in generate_cfg(s, QUICK).static_instructions)
            for s in range(6)
        }
        assert len(names) > 1

    def test_always_reaches_exit(self):
        for seed in range(25):
            assert reaches_exit(generate_cfg(seed, QUICK))

    def test_never_empty(self):
        for seed in range(10):
            cfg = generate_cfg(seed, QUICK)
            assert any(
                not inst.is_control
                for block in cfg
                for inst in block.instructions
            )


class TestGenerateCase:
    def test_case_is_deterministic(self):
        from repro.kernels.serialize import instruction_to_dict

        a = generate_case(5, QUICK)
        b = generate_case(5, QUICK)
        assert a.window == b.window
        assert a.memory_seed == b.memory_seed
        assert a.num_warps == b.num_warps
        for wa, wb in zip(a.plain, b.plain):
            assert [instruction_to_dict(i) for i in wa.instructions] == [
                instruction_to_dict(i) for i in wb.instructions
            ]

    def test_plain_trace_carries_no_hints(self):
        case = generate_case(5, QUICK)
        for warp in case.plain:
            for inst in warp.instructions:
                assert inst.hint is WritebackHint.BOTH

    def test_hinted_trace_carries_some_hints(self):
        # Over a few seeds the compiler must find at least one value it
        # can classify away from the default.
        found = False
        for seed in range(8):
            case = generate_case(seed, QUICK)
            for warp in case.hinted:
                for inst in warp.instructions:
                    if inst.hint is not WritebackHint.BOTH:
                        found = True
        assert found

    def test_trace_sizes_respect_budget(self):
        for seed in range(8):
            case = generate_case(seed, QUICK)
            for warp in case.plain:
                assert len(warp.instructions) <= QUICK.max_trace_instructions


class TestFuzzConfig:
    def test_default_config_sane(self):
        assert DEFAULT_CONFIG.min_registers >= 4
        assert DEFAULT_CONFIG.max_registers <= 254
        assert all(w >= 1 for w in DEFAULT_CONFIG.windows)

    def test_rejects_bad_register_range(self):
        with pytest.raises(KernelError):
            FuzzConfig(min_registers=10, max_registers=5)

    def test_rejects_out_of_range_registers(self):
        with pytest.raises(KernelError):
            FuzzConfig(max_registers=255)
