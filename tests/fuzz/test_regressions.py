"""Regressions for real bugs the differential fuzzer found.

Three distinct defects surfaced during the first ``repro fuzz --seed 0
--cases 50`` acceptance campaign, each at a different layer:

1. **Predicate WAR (engine)** — the issue scoreboard tracked predicate
   RAW/WAW but not WAR: a younger ``set.*`` with fewer operands could
   dispatch before an older guarded instruction sampled its guard,
   flipping the older instruction's predicate under it.
2. **Predicated kill (compiler)** — liveness and the writeback
   classifier treated a predicated write as a definite redefinition, so
   an older value with a reader *beyond* the predicated write was
   classified transient (OC-only) and evaporated from the BOC — while
   a runtime-false guard left it architecturally live.
3. **Stale window entry (BOC)** — an RF-only writeback skipped the
   window but left a previously deposited copy of the same register
   resident; the next in-window reader forwarded the stale value.

Each test pins the minimized shape through the same differential oracle
that caught it, plus a unit-level assertion at the faulty layer.
"""

import pytest

from repro.compiler.dce import eliminate_dead_code_block
from repro.compiler.liveness import compute_liveness
from repro.compiler.writeback import WritebackClass, classify_linear_writes
from repro.fuzz.differential import compare_case
from repro.isa import WritebackHint
from repro.kernels.builder import KernelBuilder
from repro.kernels.external import TraceCase

ALL_DESIGNS = ("baseline", "bow", "bow-wb", "bow-wr", "bow-wr-half", "rfc")


class TestPredicateWarHazard:
    """Bug 1: fuzz seed 9, baseline — guard corrupted at dispatch."""

    def _trace(self):
        # The older mad (three operands, slow collection) is guarded by
        # !p6; the younger set.ne (two operands) redefines p6 and used
        # to dispatch first, predicating the mad off retroactively.
        b = KernelBuilder("pred-war")
        b.set_ne(6, 30, 15)
        b.mad(2, 90, 60, 20, guard=6, guard_negated=True)
        b.set_ne(6, 30, 16)
        b.add(3, 2, 2)
        b.st(addr=3, value=2)
        b.exit()
        return b.trace(num_warps=1)

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_guarded_reader_beats_younger_predicate_writer(self, design):
        case = TraceCase(trace=self._trace(), window=2, memory_seed=9)
        assert compare_case(case, design) == []

    def test_scoreboard_blocks_predicate_war(self):
        from repro.gpu.scoreboard import Scoreboard
        from repro.isa import Instruction, Predicate, Register
        from repro.isa.opcodes import opcode_by_name

        sb = Scoreboard(1)
        reader = Instruction(
            opcode=opcode_by_name("mad"),
            dest=Register(2),
            sources=(Register(90), Register(60), Register(20)),
            predicate=Predicate(6, negated=True),
        )
        writer = Instruction(
            opcode=opcode_by_name("set.ne"),
            dest=Register(255),
            sources=(Register(30), Register(15)),
            pred_dest=Predicate(6),
        )
        sb.reserve(0, reader)
        sb.reserve_reads(0, reader)
        # The younger predicate writer must stall until the guarded
        # reader has sampled p6 at dispatch.
        assert not sb.can_issue(0, writer)
        sb.release_reads(0, reader)
        assert sb.can_issue(0, writer)


class TestPredicatedWriteIsNotAKill:
    """Bug 2: fuzz seed 9, bow-wr — OC-only value evaporated although a
    runtime-false predicated redefinition left it live."""

    def _trace(self):
        # min writes r47; the @p4 fma "redefines" it only when p4 holds
        # (it never does here: predicates reset false); the ld then
        # reads min's value from beyond the predicated write.
        b = KernelBuilder("pred-kill")
        b.inst("min", dest=47, srcs=(69, 43))
        b.inst("fma", dest=47, srcs=(56, 7, 60), guard=4)
        b.ld(54, addr=47)
        b.st(addr=54, value=47)
        b.exit()
        return b.trace(num_warps=1)

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_differential_clean(self, design):
        case = TraceCase(trace=self._trace(), window=2, memory_seed=24398)
        assert compare_case(case, design) == []

    def test_classifier_extends_chain_past_predicated_write(self):
        trace = self._trace()
        instructions = next(iter(trace)).instructions
        classes = {
            item.index: item.writeback
            for item in classify_linear_writes(instructions, window_size=2)
            if item.register_id == 47
        }
        # The min at index 0 must stay RF-bound: its reader at index 2
        # sits beyond the window AND beyond a merely-conditional kill.
        assert classes[0] in (WritebackClass.RF_ONLY, WritebackClass.BOTH)

    def test_liveness_sees_through_predicated_writes(self):
        b = KernelBuilder("live-through")
        b.block("entry")
        b.inst("min", dest=47, srcs=(69, 43))
        b.jump("middle")
        b.block("middle")
        b.inst("fma", dest=47, srcs=(56, 7, 60), guard=4)
        b.jump("tail")
        b.block("tail")
        b.ld(54, addr=47)
        b.exit()
        liveness = compute_liveness(b.build())
        # r47 must stay live across the middle block: the predicated
        # fma is not a definite definition.
        assert 47 in liveness.live_in["middle"]
        assert 47 in liveness.live_out["entry"]

    def test_dce_keeps_the_conditionally_shadowed_producer(self):
        b = KernelBuilder("dce-pred")
        b.inst("min", dest=47, srcs=(69, 43))
        b.inst("fma", dest=47, srcs=(56, 7, 60), guard=4)
        b.ld(54, addr=47)
        b.st(addr=54, value=47)
        b.exit()
        instructions = list(next(iter(b.trace(num_warps=1))).instructions)
        kept = eliminate_dead_code_block(instructions)
        assert any(inst.opcode.name == "min" for inst in kept)


class TestRfOnlyWritebackInvalidatesWindow:
    """Bug 3: fuzz seed 14, bow-wr — stale BOC entry after an RF-only
    write to a window-resident register."""

    def _trace(self):
        # xor (BOTH) deposits r2 in the window; the RF-only ld then
        # redefines r2 straight to the RF; exp must see the ld's value,
        # not the still-resident xor deposit.
        b = KernelBuilder("stale-entry")
        b.inst("xor", dest=2, srcs=(2, 3))
        b.inst("ld.shared", dest=2, srcs=(2,))
        b.inst("exp", dest=1, srcs=(2,))
        b.st(addr=3, value=1)
        b.exit()
        trace = b.trace(num_warps=1)
        instructions = next(iter(trace)).instructions
        instructions[1] = instructions[1].with_hint(WritebackHint.RF_ONLY)
        return trace

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_differential_clean(self, design):
        case = TraceCase(trace=self._trace(), window=3, memory_seed=38144)
        assert compare_case(case, design) == []
