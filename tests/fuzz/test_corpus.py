"""Corpus replay: every checked-in JSONL case stays architecturally clean.

Minimized fuzz failures and hand-written adversarial kernels live in
``tests/corpus/`` in the documented trace-case format.  Each one is
replayed here against every design it names (all registered designs by
default) — once a bug is fixed, its minimized repro regresses forever.
"""

import json
from pathlib import Path

import pytest

from repro.core.designs import design_names
from repro.fuzz.differential import compare_case
from repro.kernels.external import corpus_paths, load_case
from repro.observe.schema import validate_trace_case_record

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

CASES = corpus_paths(CORPUS_DIR)


def _case_id(path: Path) -> str:
    return path.stem


def test_corpus_is_not_empty():
    assert CASES, f"no corpus cases found under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CASES, ids=_case_id)
def test_every_record_matches_the_schema(path):
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                validate_trace_case_record(json.loads(line))


@pytest.mark.parametrize("path", CASES, ids=_case_id)
def test_case_replays_clean(path):
    case = load_case(path)
    designs = case.designs or design_names()
    failures = []
    for design in designs:
        for mismatch in compare_case(case, design):
            failures.append(str(mismatch))
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize("path", CASES, ids=_case_id)
def test_case_round_trips_through_the_codec(path):
    from repro.kernels.external import case_from_records, case_to_records

    case = load_case(path)
    again = case_from_records(list(case_to_records(case)))
    assert again.window == case.window
    assert again.memory_seed == case.memory_seed
    assert again.num_sms == case.num_sms
    assert again.designs == case.designs
    assert again.trace.num_warps == case.trace.num_warps
    assert again.trace.total_instructions == case.trace.total_instructions
