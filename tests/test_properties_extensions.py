"""Property-based tests for the extension subsystems.

Covers the SIMT mask algebra, reconvergence invariants on random
structured CFGs, trace-serialization round trips, and the scheduling
pass's two contracts (semantics preserved, locality never regresses).
"""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.compiler.scheduling import schedule_block
from repro.core.window import read_bypass_counts
from repro.gpu.reference import execute_reference
from repro.isa import Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.registers import Register
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG
from repro.kernels.serialize import trace_from_dict, trace_to_dict
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.simt.mask import FULL_MASK, WARP_WIDTH, ActiveMask
from repro.simt.stack import expand_masked_trace

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

masks = st.integers(min_value=0, max_value=(1 << WARP_WIDTH) - 1).map(ActiveMask)

_REG = st.integers(min_value=0, max_value=9)


@st.composite
def straightline_program(draw, max_size=20):
    size = draw(st.integers(min_value=1, max_value=max_size))
    instructions = []
    for _ in range(size):
        kind = draw(st.integers(0, 9))
        if kind < 6:
            name = draw(st.sampled_from(["add", "sub", "mul", "xor", "mov"]))
            opcode = opcode_by_name(name)
            sources = tuple(Register(draw(_REG))
                            for _ in range(opcode.num_sources))
            instructions.append(Instruction(
                opcode=opcode, dest=Register(draw(_REG)), sources=sources,
                immediate=draw(st.integers(0, 0xFFFF)),
            ))
        elif kind < 8:
            instructions.append(Instruction(
                opcode=opcode_by_name("ld.global"),
                dest=Register(draw(_REG)), sources=(Register(draw(_REG)),),
            ))
        else:
            instructions.append(Instruction(
                opcode=opcode_by_name("st.global"),
                sources=(Register(draw(_REG)), Register(draw(_REG))),
            ))
    return instructions


@st.composite
def diamond_chain_cfg(draw):
    """A random chain of diamonds and loops (structured control flow)."""
    segments = draw(st.integers(min_value=1, max_value=3))
    blocks = []
    counter = 0

    def alu(dest, src_a, src_b):
        return Instruction(
            opcode=opcode_by_name("add"),
            dest=Register(dest),
            sources=(Register(src_a), Register(src_b)),
        )

    entry_label = "b0"
    previous_tail = None
    for segment in range(segments):
        kind = draw(st.sampled_from(["diamond", "loop", "chain"]))
        head = f"b{counter}"
        if kind == "diamond":
            left, right, join = (f"b{counter + i}" for i in (1, 2, 3))
            probability = draw(st.floats(min_value=0.1, max_value=0.9))
            blocks += [
                BasicBlock(head, [alu(1, 2, 3)],
                           [Edge(left, probability),
                            Edge(right, 1 - probability)]),
                BasicBlock(left, [alu(4, 1, 1)], [Edge(join)]),
                BasicBlock(right, [alu(4, 1, 2)], [Edge(join)]),
                BasicBlock(join, [alu(5, 4, 4)]),
            ]
            tail = join
            counter += 4
        elif kind == "loop":
            body, exit_label = f"b{counter + 1}", f"b{counter + 2}"
            probability = draw(st.floats(min_value=0.1, max_value=0.8))
            blocks += [
                BasicBlock(head, [alu(1, 1, 2)], [Edge(body)]),
                BasicBlock(body, [alu(1, 1, 1)],
                           [Edge(body, probability),
                            Edge(exit_label, 1 - probability)]),
                BasicBlock(exit_label, [alu(6, 1, 1)]),
            ]
            tail = exit_label
            counter += 3
        else:
            blocks += [BasicBlock(head, [alu(1, 2, 3), alu(2, 1, 1)])]
            tail = head
            counter += 1
        if previous_tail is not None:
            for block in blocks:
                if block.label == previous_tail:
                    block.edges.append(Edge(head))
        previous_tail = tail
    return KernelCFG("random", blocks, entry=entry_label)


# ---------------------------------------------------------------------------
# mask properties
# ---------------------------------------------------------------------------

class TestMaskProperties:
    @given(masks, masks)
    @settings(max_examples=150, deadline=None)
    def test_partition_is_exact(self, mask, taken):
        part_taken, part_fall = mask.partition(taken)
        assert (part_taken | part_fall) == mask
        assert not (part_taken & part_fall)

    @given(masks)
    @settings(max_examples=100, deadline=None)
    def test_double_complement(self, mask):
        assert ~~mask == mask

    @given(masks, masks)
    @settings(max_examples=100, deadline=None)
    def test_de_morgan(self, a, b):
        assert ~(a & b) == (~a | ~b)

    @given(masks)
    @settings(max_examples=100, deadline=None)
    def test_count_matches_lanes(self, mask):
        assert mask.count == len(list(mask.lanes()))


# ---------------------------------------------------------------------------
# SIMT stack properties
# ---------------------------------------------------------------------------

class TestStackProperties:
    @given(diamond_chain_cfg(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_lane_work_is_consistent(self, cfg, seed):
        """Per-lane instruction counts equal a scalar per-lane walk.

        Each lane's journey through the CFG is an independent walk; the
        SIMT stack must issue every lane exactly the instructions its
        walk requires — divergence changes *grouping*, never work.
        """
        trace = expand_masked_trace(cfg, seed=seed,
                                    max_instructions=100_000)
        per_lane = [0] * WARP_WIDTH
        for item in trace:
            for lane in item.mask.lanes():
                per_lane[lane] += 1
        # Every lane executes at least the entry block and at most the
        # instruction bound.
        entry_len = len(cfg.blocks[cfg.entry].instructions)
        assert all(count >= entry_len for count in per_lane)

    @given(diamond_chain_cfg(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_masks_never_empty_or_overflow(self, cfg, seed):
        trace = expand_masked_trace(cfg, seed=seed,
                                    max_instructions=100_000)
        for item in trace:
            assert item.mask
            assert item.mask.count <= WARP_WIDTH

    @given(diamond_chain_cfg(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_entry_block_runs_full(self, cfg, seed):
        trace = expand_masked_trace(cfg, seed=seed,
                                    max_instructions=100_000)
        assert trace[0].mask == FULL_MASK


# ---------------------------------------------------------------------------
# serialization properties
# ---------------------------------------------------------------------------

class TestSerializationProperties:
    @given(straightline_program(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_everything(self, program, warps):
        trace = KernelTrace(name="p", warps=[
            WarpTrace(w, list(program)) for w in range(warps)
        ])
        back = trace_from_dict(trace_to_dict(trace))
        assert back.total_instructions == trace.total_instructions
        for warp_in, warp_out in zip(trace, back):
            for a, b in zip(warp_in, warp_out):
                assert a.opcode.name == b.opcode.name
                assert a.dest == b.dest
                assert a.sources == b.sources
                assert a.immediate == b.immediate

    @given(straightline_program())
    @settings(max_examples=40, deadline=None)
    def test_reloaded_trace_simulates_identically(self, program):
        trace = KernelTrace(name="p", warps=[WarpTrace(0, list(program))])
        back = trace_from_dict(trace_to_dict(trace))
        first = execute_reference(trace, memory_seed=3)
        second = execute_reference(back, memory_seed=3)
        assert first.memory == second.memory
        assert first.registers == second.registers


# ---------------------------------------------------------------------------
# scheduling properties
# ---------------------------------------------------------------------------

class TestSchedulingProperties:
    @given(straightline_program(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_semantics_preserved(self, program, window):
        scheduled = schedule_block(program, window).instructions
        trace_a = KernelTrace(name="a", warps=[WarpTrace(0, list(program))])
        trace_b = KernelTrace(name="b",
                              warps=[WarpTrace(0, list(scheduled))])
        ref_a = execute_reference(trace_a, memory_seed=1)
        ref_b = execute_reference(trace_b, memory_seed=1)
        assert ref_a.memory == ref_b.memory
        assert ref_a.registers == ref_b.registers

    @given(straightline_program(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_locality_never_regresses(self, program, window):
        before, _ = read_bypass_counts(program, window)
        scheduled = schedule_block(program, window).instructions
        after, _ = read_bypass_counts(list(scheduled), window)
        assert after >= before or _writes_improved(program, scheduled, window)

    @given(straightline_program(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_permutation(self, program, window):
        result = schedule_block(program, window)
        assert sorted(result.permutation) == list(range(len(program)))


class TestDceProperties:
    @given(straightline_program())
    @settings(max_examples=60, deadline=None)
    def test_dce_preserves_memory_semantics(self, program):
        from repro.compiler.dce import eliminate_dead_code_block

        cleaned = eliminate_dead_code_block(program)
        trace_a = KernelTrace(name="a", warps=[WarpTrace(0, list(program))])
        trace_b = KernelTrace(name="b", warps=[WarpTrace(0, list(cleaned))])
        ref_a = execute_reference(trace_a, memory_seed=4)
        ref_b = execute_reference(trace_b, memory_seed=4)
        assert ref_a.memory == ref_b.memory

    @given(straightline_program())
    @settings(max_examples=60, deadline=None)
    def test_dce_is_idempotent(self, program):
        from repro.compiler.dce import eliminate_dead_code_block

        once = eliminate_dead_code_block(program)
        twice = eliminate_dead_code_block(once)
        assert [i.uid for i in once] == [i.uid for i in twice]

    @given(straightline_program())
    @settings(max_examples=60, deadline=None)
    def test_dce_never_removes_side_effects(self, program):
        from repro.compiler.dce import eliminate_dead_code_block

        cleaned = eliminate_dead_code_block(program)
        effects_before = [i for i in program if i.is_memory]
        effects_after = [i for i in cleaned if i.is_memory]
        assert len(effects_before) == len(effects_after)


def _writes_improved(before, after, window) -> bool:
    from repro.core.window import write_bypass_opportunity_counts

    b, _ = write_bypass_opportunity_counts(before, window)
    a, _ = write_bypass_opportunity_counts(list(after), window)
    return a >= b
