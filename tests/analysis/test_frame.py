"""Tests for the Frame column store (the pandas stand-in)."""

import io

import pytest

from repro.analysis import Frame
from repro.errors import AnalysisError

RECORDS = [
    {"benchmark": "BFS", "design": "bow", "ipc": 0.5},
    {"benchmark": "BFS", "design": "baseline", "ipc": 0.4},
    {"benchmark": "NW", "design": "bow", "ipc": None},
]


class TestConstruction:
    def test_from_records_unions_columns_first_seen(self):
        frame = Frame.from_records([{"a": 1}, {"b": 2, "a": 3}])
        assert frame.columns == ("a", "b")
        assert frame["a"] == [1, 3]
        assert frame["b"] == [None, 2]

    def test_explicit_columns_fix_order_and_fill_missing(self):
        frame = Frame.from_records([{"a": 1}], columns=("b", "a"))
        assert frame.columns == ("b", "a")
        assert frame["b"] == [None]

    def test_ragged_columns_rejected(self):
        with pytest.raises(AnalysisError, match="ragged"):
            Frame({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        frame = Frame.from_records([])
        assert len(frame) == 0
        assert frame.columns == ()

    def test_unknown_column_is_typed_error(self):
        frame = Frame.from_records(RECORDS)
        with pytest.raises(AnalysisError, match="no column 'nope'"):
            frame.column("nope")

    def test_column_returns_a_copy(self):
        frame = Frame.from_records(RECORDS)
        frame["ipc"].append(99)
        assert len(frame["ipc"]) == 3


class TestTransforms:
    def test_filter_and_where(self):
        frame = Frame.from_records(RECORDS)
        assert len(frame.filter(lambda row: row["ipc"] is not None)) == 2
        assert frame.where(benchmark="BFS", design="bow")["ipc"] == [0.5]

    def test_select_reorders(self):
        frame = Frame.from_records(RECORDS).select("ipc", "benchmark")
        assert frame.columns == ("ipc", "benchmark")

    def test_assign_computes_per_row(self):
        frame = Frame.from_records(RECORDS).assign(
            "label", lambda row: f"{row['benchmark']}/{row['design']}"
        )
        assert frame["label"][0] == "BFS/bow"

    def test_sort_is_stable_and_none_first(self):
        frame = Frame.from_records(RECORDS).sort("ipc")
        assert frame["ipc"] == [None, 0.4, 0.5]
        assert frame.sort("ipc", reverse=True)["ipc"] == [0.5, 0.4, None]

    def test_sort_mixed_types_deterministic(self):
        frame = Frame.from_records(
            [{"v": "x"}, {"v": 2}, {"v": None}, {"v": True}]
        ).sort("v")
        assert frame["v"] == [None, True, 2, "x"]

    def test_unique_first_seen_order(self):
        assert Frame.from_records(RECORDS).unique("benchmark") == ["BFS", "NW"]

    def test_groupby_yields_subframes(self):
        groups = dict(Frame.from_records(RECORDS).groupby("benchmark"))
        assert set(groups) == {("BFS",), ("NW",)}
        assert len(groups[("BFS",)]) == 2

    def test_transforms_do_not_mutate_source(self):
        frame = Frame.from_records(RECORDS)
        frame.filter(lambda row: False)
        frame.sort("ipc")
        assert len(frame) == 3


class TestSerialization:
    def test_to_csv_string_none_as_empty(self):
        text = Frame.from_records(RECORDS).to_csv()
        lines = text.splitlines()
        assert lines[0] == "benchmark,design,ipc"
        assert lines[3] == "NW,bow,"

    def test_to_csv_stream_and_path_agree(self, tmp_path):
        frame = Frame.from_records(RECORDS)
        stream = io.StringIO()
        frame.to_csv(stream)
        path = tmp_path / "frame.csv"
        frame.to_csv(str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            assert handle.read() == stream.getvalue() == frame.to_csv()

    def test_to_pandas_gated(self):
        frame = Frame.from_records(RECORDS)
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(AnalysisError, match="pandas is not installed"):
                frame.to_pandas()
        else:
            df = frame.to_pandas()
            assert list(df.columns) == ["benchmark", "design", "ipc"]
