"""Shared fixtures: the checked-in figure inputs, loaded once."""

from pathlib import Path

import pytest

from repro.analysis import build_inputs

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "figures"

#: Every telemetry stream checked in for offline figure generation.
TELEMETRY_FILES = [
    FIXTURES / "telemetry_iw_sweep.jsonl",
    FIXTURES / "telemetry_sms1.jsonl",
    FIXTURES / "telemetry_sms2.jsonl",
    FIXTURES / "telemetry_sms4.jsonl",
    FIXTURES / "telemetry_v1_failures.jsonl",
]

TRACE_FILE = FIXTURES / "trace_nw_bow.jsonl"

BENCH_FILES = [
    Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_engine.json",
    Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_service.json",
]


@pytest.fixture(scope="session")
def inputs():
    """FigureInputs over every checked-in fixture (loaded once)."""
    return build_inputs(
        telemetry=[str(path) for path in TELEMETRY_FILES],
        trace=str(TRACE_FILE),
        bench=[str(path) for path in BENCH_FILES],
    )
