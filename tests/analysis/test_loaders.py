"""Tests for the schema-validated telemetry/trace/bench loaders."""

import json
import shutil

import pytest

from repro.analysis import (
    build_bench_df,
    build_failures_df,
    build_points_df,
    build_trace_df,
)
from repro.analysis.loaders import (
    BENCH_COLUMNS,
    FAILURE_COLUMNS,
    POINT_COLUMNS,
    TRACE_COLUMNS,
)
from repro.errors import AnalysisError
from repro.stats.trace import STAGE_OF, EventKind

from .conftest import BENCH_FILES, FIXTURES, TELEMETRY_FILES, TRACE_FILE


class TestPoints:
    def test_v2_stream_loads_with_scale_stamps(self):
        frame = build_points_df(FIXTURES / "telemetry_iw_sweep.jsonl")
        assert frame.columns == POINT_COLUMNS
        assert len(frame) == 24
        assert set(frame.unique("num_warps")) == {4}
        assert set(frame.unique("trace_scale")) == {0.05}
        assert set(frame.unique("schema")) == {2}
        assert frame.unique("stream") == ["telemetry_iw_sweep.jsonl"]
        assert frame.meta == {
            "corrupt_lines": 0,
            "invalid_records": 0,
            "streams": 1,
        }

    def test_v1_stream_loads_without_v2_columns(self):
        frame = build_points_df(FIXTURES / "telemetry_v1_failures.jsonl")
        assert len(frame) == 3
        assert set(frame.unique("schema")) == {1}
        # v1 predates fast_forwarded_cycles; the column exists, empty.
        assert frame["fast_forwarded_cycles"] == [None, None, None]
        # A memoized point carries no metrics — tolerated, not dropped.
        memo = frame.where(source="memo")
        assert len(memo) == 1
        assert memo["ipc"] == [None]

    def test_multiple_streams_stay_separable(self):
        frame = build_points_df(
            FIXTURES / "telemetry_sms1.jsonl",
            FIXTURES / "telemetry_sms2.jsonl",
            FIXTURES / "telemetry_sms4.jsonl",
        )
        assert frame.meta["streams"] == 3
        assert sorted(frame.unique("num_sms")) == [1, 2, 4]

    def test_torn_tail_counted_not_fatal(self, tmp_path):
        source = (FIXTURES / "telemetry_iw_sweep.jsonl").read_text()
        lines = source.splitlines()
        torn = tmp_path / "torn.jsonl"
        # A crash mid-write leaves a truncated final record: drop the
        # summary line and tear the last point in half.
        torn.write_text("\n".join(lines[:-2]) + "\n" + lines[-2][:25] + "\n")
        frame = build_points_df(torn)
        assert frame.meta["corrupt_lines"] == 1
        assert len(frame) == 23

    def test_invalid_records_counted_separately(self, tmp_path):
        stream = tmp_path / "invalid.jsonl"
        with open(FIXTURES / "telemetry_sms1.jsonl", encoding="utf-8") as src:
            lines = src.read().splitlines()
        lines.insert(2, json.dumps({"type": "gossip"}))
        lines.insert(3, "{not json")
        stream.write_text("\n".join(lines) + "\n")
        frame = build_points_df(stream)
        assert frame.meta == {
            "corrupt_lines": 1,
            "invalid_records": 1,
            "streams": 1,
        }
        assert len(frame) == 4

    def test_missing_start_record_downgrades_scale(self, tmp_path):
        with open(FIXTURES / "telemetry_sms1.jsonl", encoding="utf-8") as src:
            lines = src.read().splitlines()
        headless = tmp_path / "headless.jsonl"
        headless.write_text("\n".join(lines[1:]) + "\n")
        frame = build_points_df(headless)
        assert len(frame) == 4
        assert frame.unique("num_sms") == [None]
        assert frame.unique("schema") == [None]

    def test_no_paths_rejected(self):
        with pytest.raises(AnalysisError, match="no telemetry files"):
            build_points_df()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            build_points_df(tmp_path / "nope.jsonl")


class TestFailures:
    def test_failure_records_loaded(self):
        frame = build_failures_df(FIXTURES / "telemetry_v1_failures.jsonl")
        assert frame.columns == FAILURE_COLUMNS
        assert len(frame) == 1
        row = frame.to_records()[0]
        assert row["error_type"] == "DeadlockError"
        assert row["kind"] == "transient"
        assert row["stream"] == "telemetry_v1_failures.jsonl"

    def test_clean_stream_has_no_failures(self):
        frame = build_failures_df(FIXTURES / "telemetry_iw_sweep.jsonl")
        assert len(frame) == 0
        assert frame.columns == FAILURE_COLUMNS


class TestTrace:
    def test_jsonl_export_loads_with_stages(self):
        frame = build_trace_df(TRACE_FILE)
        assert frame.columns == TRACE_COLUMNS
        assert len(frame) > 0
        assert frame.meta == {"corrupt_lines": 0, "invalid_records": 0}
        for row in frame.rows():
            assert row["stage"] == STAGE_OF[EventKind(row["kind"])]
            assert row["count"] >= 1

    def test_fixture_covers_the_figure_kinds(self):
        kinds = set(build_trace_df(TRACE_FILE).unique("kind"))
        assert {"issue_stall", "boc_hit", "boc_insert", "boc_evict"} <= kinds

    def test_csv_round_trip(self, tmp_path):
        jsonl = build_trace_df(TRACE_FILE)
        path = tmp_path / "events.csv"
        jsonl.select(*TRACE_COLUMNS[:2], *TRACE_COLUMNS[3:]).to_csv(str(path))
        csv_frame = build_trace_df(path)
        assert len(csv_frame) == len(jsonl)
        assert csv_frame["kind"] == jsonl["kind"]
        assert csv_frame["stage"] == jsonl["stage"]
        assert csv_frame["cycle"] == jsonl["cycle"]

    def test_csv_bad_rows_counted(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text(
            "cycle,kind,warp,count\n"
            "1,issue,0,1\n"
            "oops,issue,0,1\n"
            "2,gossip,0,1\n"
        )
        frame = build_trace_df(path)
        assert len(frame) == 1
        assert frame.meta["invalid_records"] == 2

    def test_format_inferred_from_extension(self, tmp_path):
        path = tmp_path / "events.CSV"
        path.write_text("cycle,kind,warp,count\n1,issue,0,1\n")
        assert len(build_trace_df(path)) == 1

    def test_unknown_format_rejected(self):
        with pytest.raises(AnalysisError, match="unknown trace format"):
            build_trace_df(TRACE_FILE, format="parquet")

    def test_torn_tail_tolerated(self, tmp_path):
        torn = tmp_path / "torn.jsonl"
        shutil.copy(TRACE_FILE, torn)
        with open(torn, "a", encoding="utf-8") as handle:
            handle.write('{"cycle": 7, "ki')
        frame = build_trace_df(torn)
        assert frame.meta["corrupt_lines"] == 1


class TestBench:
    def test_engine_and_service_formats_distinguished(self):
        frame = build_bench_df(*BENCH_FILES)
        assert frame.columns == BENCH_COLUMNS
        engine = frame.where(kind="engine")
        service = frame.where(kind="service")
        assert len(engine) > 0 and len(service) > 0
        assert set(service.unique("bench_pass")) == {"cold", "warm"}
        for row in engine.rows():
            assert "/" in row["case"]
            assert row["cycles_per_sec"] > 0

    def test_ff_share_derived_when_present(self):
        engine = build_bench_df(BENCH_FILES[0])
        for row in engine.rows():
            if row["fast_forwarded_cycles"] is not None and row["cycles"]:
                assert row["ff_share"] == pytest.approx(
                    row["fast_forwarded_cycles"] / row["cycles"]
                )

    def test_service_sniffed_before_its_designs_list(self):
        # The service report carries a "designs" *list*; it must not be
        # mistaken for the engine format's designs map.
        frame = build_bench_df(BENCH_FILES[1])
        assert frame.unique("kind") == ["service"]

    def test_unrecognized_format_rejected(self, tmp_path):
        path = tmp_path / "BENCH_weird.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(AnalysisError, match="unrecognized bench format"):
            build_bench_df(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("][")
        with pytest.raises(AnalysisError, match="not JSON"):
            build_bench_df(path)

    def test_no_paths_rejected(self):
        with pytest.raises(AnalysisError, match="no bench files"):
            build_bench_df()


class TestFixtureInventory:
    def test_all_checked_in_streams_parse_cleanly(self):
        frame = build_points_df(*TELEMETRY_FILES)
        assert frame.meta["corrupt_lines"] == 0
        assert frame.meta["invalid_records"] == 0
        assert frame.meta["streams"] == len(TELEMETRY_FILES)
