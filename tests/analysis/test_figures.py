"""Per-figure tests: every registered figure builds from the fixtures."""

import pytest

from repro.analysis import FIGURES, FigureInputs, figure_names, figure_spec
from repro.analysis.figures import INPUT_KINDS, register_figure
from repro.analysis.frame import Frame
from repro.errors import AnalysisError, SchemaError
from repro.observe.schema import FIGURE_SPEC_SCHEMA, _check


class TestRegistry:
    def test_at_least_six_figures_registered(self):
        assert len(FIGURES) >= 6

    def test_every_figure_requires_known_kinds(self):
        for entry in FIGURES.values():
            assert entry.requires
            for kind in (*entry.requires, *entry.optional):
                assert kind in INPUT_KINDS

    def test_unknown_figure_is_typed_error(self):
        with pytest.raises(AnalysisError, match="unknown figure"):
            figure_spec("nope")

    def test_duplicate_registration_rejected(self):
        name = next(iter(FIGURES))
        with pytest.raises(AnalysisError, match="duplicate"):
            register_figure(name, title="x", requires=("points",))(
                lambda inputs: None
            )

    def test_missing_input_is_typed_error(self):
        with pytest.raises(AnalysisError, match="needs points"):
            figure_spec("ipc_iw_frontier").build(FigureInputs())

    def test_empty_table_is_typed_error(self):
        from repro.analysis.loaders import TRACE_COLUMNS

        empty = FigureInputs(
            trace=Frame.from_records([], columns=TRACE_COLUMNS)
        )
        with pytest.raises(AnalysisError, match="no rows survived"):
            figure_spec("stall_breakdown").build(empty)


def _build(name, inputs):
    spec, table = figure_spec(name).build(inputs)
    # The raw generator output must already satisfy the spec contract
    # (the renderer only adds $schema/data/title/usermeta on top).
    themed = dict(spec)
    themed["$schema"] = FIGURE_SPEC_SCHEMA["properties"]["$schema"]["const"]
    themed["data"] = {"url": f"{name}.csv"}
    _check(themed, FIGURE_SPEC_SCHEMA, "figure")
    return spec, table


class TestIpcIwFrontier:
    def test_builds_per_design_series(self, inputs):
        spec, table = _build("ipc_iw_frontier", inputs)
        assert table.columns == ("benchmark", "design", "window", "ipc")
        # 3 benchmarks x 4 designs x windowed/windowless points.
        assert set(table.unique("benchmark")) == {"BFS", "NW", "SAD"}
        assert set(table.unique("design")) >= {"baseline", "bow", "bow-wr"}
        assert spec["encoding"]["facet"]["field"] == "benchmark"
        assert all(value is not None for value in table["ipc"])

    def test_device_points_excluded(self, inputs):
        _, table = _build("ipc_iw_frontier", inputs)
        # The sms2/sms4 streams must not leak into the single-SM frontier.
        bfs_baseline = table.where(benchmark="BFS", design="baseline")
        assert len(bfs_baseline) == len(set(bfs_baseline["window"]))


class TestDeviceIpcScaling:
    def test_ipc_grows_with_sms(self, inputs):
        spec, table = _build("device_ipc_scaling", inputs)
        assert sorted(set(table["num_sms"])) == [1, 2, 4]
        series = table.where(benchmark="BFS", design="bow").sort("num_sms")
        ipcs = series["ipc"]
        assert ipcs == sorted(ipcs)
        assert spec["encoding"]["x"]["field"] == "num_sms"


class TestStallBreakdown:
    def test_reasons_aggregated(self, inputs):
        spec, table = _build("stall_breakdown", inputs)
        assert set(table.unique("kind")) <= {"issue_stall", "dispatch_stall"}
        assert all(events > 0 for events in table["events"])
        # Sorted most-stalled first for the bar chart.
        assert table["events"] == sorted(table["events"], reverse=True)
        assert spec["mark"] == "bar"


class TestBocComposition:
    def test_hit_insert_evict_present(self, inputs):
        _, table = _build("boc_composition", inputs)
        assert set(table.unique("kind")) == {
            "boc_hit",
            "boc_insert",
            "boc_evict",
        }
        # Eviction reasons are preserved; reasonless events read "direct".
        assert "direct" in table.unique("reason")


class TestSweepHealth:
    def test_provenance_and_failures_stacked(self, inputs):
        spec, table = _build("sweep_health", inputs)
        assert set(table.unique("source")) >= {"sim", "cache", "failed"}
        domain = spec["encoding"]["color"]["scale"]["domain"]
        assert domain == ["memo", "cache", "sim", "failed"]

    def test_failures_input_is_optional(self, inputs):
        lone = FigureInputs(points=inputs.points)
        _, table = _build("sweep_health", lone)
        assert "failed" not in table.unique("source")


class TestEngineThroughput:
    def test_layered_spec_with_ff_share(self, inputs):
        spec, table = _build("engine_throughput", inputs)
        assert "layer" in spec and len(spec["layer"]) == 2
        assert spec["resolve"]["scale"]["y"] == "independent"
        assert all(value > 0 for value in table["cycles_per_sec"])
        assert any(value is not None for value in table["ff_share"])


class TestServiceThroughput:
    def test_cold_and_warm_passes(self, inputs):
        spec, table = _build("service_throughput", inputs)
        assert table["bench_pass"] == ["cold", "warm"]
        cold, warm = table["points_per_sec"]
        assert warm > cold
        assert spec["encoding"]["y"]["scale"] == {"type": "log"}


class TestSpecContract:
    def test_every_figure_spec_validates_both_ways(self, inputs):
        # jsonschema (when importable) and the fallback interpreter
        # must both accept every generated spec.
        for name in figure_names():
            themed, _ = _build(name, inputs)
            themed["$schema"] = FIGURE_SPEC_SCHEMA["properties"]["$schema"][
                "const"
            ]
            themed["data"] = {"url": f"{name}.csv"}
            _check(themed, FIGURE_SPEC_SCHEMA, name)
            jsonschema = pytest.importorskip("jsonschema")
            jsonschema.validate(themed, FIGURE_SPEC_SCHEMA)

    def test_fallback_rejects_spec_violations(self):
        bogus = {
            "$schema": FIGURE_SPEC_SCHEMA["properties"]["$schema"]["const"],
            "description": "x",
            "data": {"url": "x.csv"},
            "mark": "bar",
            "encoding": {"x": {"field": "a", "type": "galactic"}},
        }
        with pytest.raises(SchemaError):
            _check(bogus, FIGURE_SPEC_SCHEMA, "figure")
