"""Tests for the figure renderer (spec + CSV emission, validation)."""

import csv
import json

import pytest

from repro.analysis import (
    FIGURES,
    FigureInputs,
    apply_theme,
    build_inputs,
    render_figure,
    render_figures,
)
from repro.errors import AnalysisError
from repro.observe.schema import validate_figure_spec

from .conftest import BENCH_FILES, TELEMETRY_FILES, TRACE_FILE


class TestTheme:
    def test_theme_stamps_schema_and_config(self):
        spec = apply_theme({"mark": "bar", "encoding": {}, "description": "x"})
        assert spec["$schema"].endswith("vega-lite/v5.json")
        assert spec["config"]["range"]["category"]
        assert spec["width"] > 0

    def test_faceted_specs_skip_fixed_size(self):
        spec = apply_theme(
            {
                "mark": "bar",
                "description": "x",
                "encoding": {"facet": {"field": "b", "type": "nominal"}},
            }
        )
        assert "width" not in spec

    def test_theme_does_not_mutate_input(self):
        original = {"mark": "bar", "encoding": {}, "description": "x"}
        apply_theme(original)
        assert original == {"mark": "bar", "encoding": {}, "description": "x"}


class TestRenderFigure:
    def test_emits_valid_spec_and_csv(self, inputs, tmp_path):
        rendered = render_figure("ipc_iw_frontier", inputs, str(tmp_path))
        assert rendered.rows > 0
        with open(rendered.spec_path, encoding="utf-8") as handle:
            spec = json.load(handle)
        validate_figure_spec(spec)
        assert spec["data"] == {"url": "ipc_iw_frontier.csv"}
        assert spec["usermeta"]["figure"] == "ipc_iw_frontier"
        assert spec["usermeta"]["rows"] == rendered.rows
        with open(rendered.csv_path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == rendered.rows

    def test_format_spec_only(self, inputs, tmp_path):
        rendered = render_figure(
            "boc_composition", inputs, str(tmp_path), format="spec"
        )
        assert rendered.csv_path is None
        assert rendered.paths == [str(tmp_path / "boc_composition.vl.json")]

    def test_format_csv_only(self, inputs, tmp_path):
        rendered = render_figure(
            "boc_composition", inputs, str(tmp_path), format="csv"
        )
        assert rendered.spec_path is None
        assert (tmp_path / "boc_composition.csv").exists()
        assert not (tmp_path / "boc_composition.vl.json").exists()

    def test_unknown_format_rejected(self, inputs, tmp_path):
        with pytest.raises(AnalysisError, match="unknown render format"):
            render_figure("boc_composition", inputs, str(tmp_path), format="png")

    def test_unknown_figure_rejected(self, inputs, tmp_path):
        with pytest.raises(AnalysisError, match="unknown figure"):
            render_figure("nope", inputs, str(tmp_path))


class TestRenderFigures:
    def test_full_inputs_render_every_figure(self, inputs, tmp_path):
        report = render_figures(inputs, str(tmp_path))
        assert [item.name for item in report.rendered] == list(FIGURES)
        assert report.skipped == []
        for item in report.rendered:
            with open(item.spec_path, encoding="utf-8") as handle:
                validate_figure_spec(json.load(handle))

    def test_partial_inputs_skip_with_reasons(self, inputs, tmp_path):
        lone = FigureInputs(trace=inputs.trace)
        lines = []
        report = render_figures(lone, str(tmp_path), log=lines.append)
        assert {item.name for item in report.rendered} == {
            "stall_breakdown",
            "boc_composition",
        }
        skipped = dict(report.skipped)
        assert "missing points input(s)" in skipped["ipc_iw_frontier"]
        assert any("skipped" in line for line in lines)

    def test_only_makes_missing_inputs_fatal(self, inputs, tmp_path):
        lone = FigureInputs(trace=inputs.trace)
        with pytest.raises(AnalysisError, match="needs bench"):
            render_figures(lone, str(tmp_path), only=["engine_throughput"])


class TestBuildInputs:
    def test_loads_each_slot(self):
        inputs = build_inputs(
            telemetry=[str(TELEMETRY_FILES[0])],
            trace=str(TRACE_FILE),
            bench=[str(path) for path in BENCH_FILES],
        )
        assert inputs.missing(("points", "failures", "trace", "bench")) == []

    def test_empty_slots_stay_none(self):
        inputs = build_inputs()
        assert inputs.missing(("points", "failures", "trace", "bench")) == [
            "points",
            "failures",
            "trace",
            "bench",
        ]
