"""Tests for the `repro figures` CLI subcommand."""

import json

from repro.analysis import FIGURES
from repro.cli import main
from repro.observe.schema import validate_figure_spec

from .conftest import BENCH_FILES, TELEMETRY_FILES, TRACE_FILE


def _full_argv(out_dir):
    argv = ["figures", "--out", str(out_dir)]
    for path in TELEMETRY_FILES:
        argv += ["--telemetry", str(path)]
    argv += ["--trace", str(TRACE_FILE)]
    for path in BENCH_FILES:
        argv += ["--bench", str(path)]
    return argv


class TestFiguresCommand:
    def test_list_prints_registry(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_full_render_emits_every_figure(self, tmp_path, capsys):
        assert main(_full_argv(tmp_path)) == 0
        captured = capsys.readouterr()
        assert f"rendered {len(FIGURES)} figure(s)" in captured.out
        for name in FIGURES:
            spec_path = tmp_path / f"{name}.vl.json"
            assert spec_path.exists()
            assert (tmp_path / f"{name}.csv").exists()
            with open(spec_path, encoding="utf-8") as handle:
                validate_figure_spec(json.load(handle))

    def test_only_selects_figures(self, tmp_path, capsys):
        code = main(
            [
                "figures",
                "--telemetry", str(TELEMETRY_FILES[0]),
                "--only", "ipc_iw_frontier",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "ipc_iw_frontier.vl.json").exists()
        assert not (tmp_path / "sweep_health.vl.json").exists()

    def test_format_csv_skips_specs(self, tmp_path, capsys):
        code = main(
            [
                "figures",
                "--telemetry", str(TELEMETRY_FILES[0]),
                "--out", str(tmp_path),
                "--format", "csv",
            ]
        )
        assert code == 0
        assert not list(tmp_path.glob("*.vl.json"))
        assert list(tmp_path.glob("*.csv"))

    def test_partial_inputs_skip_and_report(self, tmp_path, capsys):
        code = main(
            [
                "figures",
                "--trace", str(TRACE_FILE),
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped for missing inputs" in captured.out

    def test_no_inputs_rejected(self, capsys):
        assert main(["figures"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_unknown_figure_rejected(self, capsys):
        code = main(
            [
                "figures",
                "--telemetry", str(TELEMETRY_FILES[0]),
                "--only", "bogus",
            ]
        )
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(
            [
                "figures",
                "--telemetry", str(tmp_path / "nope.jsonl"),
                "--out", str(tmp_path),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_salvage_warning_on_torn_stream(self, tmp_path, capsys):
        torn = tmp_path / "torn.jsonl"
        source = TELEMETRY_FILES[0].read_text().splitlines()
        torn.write_text("\n".join(source) + '\n{"type": "poi\n')
        code = main(
            [
                "figures",
                "--telemetry", str(torn),
                "--out", str(tmp_path / "figs"),
            ]
        )
        assert code == 0
        assert "skipped 1 corrupt/invalid" in capsys.readouterr().err
