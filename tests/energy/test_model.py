"""Tests for dynamic-energy accounting (Figure 13 logic)."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import SimulationError
from repro.stats.counters import Counters


def counters(rf_reads=0, rf_writes=0, boc_reads=0, boc_writes=0):
    c = Counters()
    c.rf_reads = rf_reads
    c.rf_writes = rf_writes
    c.boc_reads = boc_reads
    c.boc_writes = boc_writes
    return c


class TestBreakdown:
    def test_rf_energy_proportional_to_accesses(self):
        model = EnergyModel()
        one = model.breakdown(counters(rf_reads=1))
        ten = model.breakdown(counters(rf_reads=10))
        assert ten.rf_energy_pj == pytest.approx(10 * one.rf_energy_pj)

    def test_boc_accesses_are_overhead(self):
        model = EnergyModel()
        breakdown = model.breakdown(counters(boc_reads=5, boc_writes=5))
        assert breakdown.rf_energy_pj == 0
        assert breakdown.overhead_pj > 0

    def test_boc_access_far_cheaper_than_bank(self):
        model = EnergyModel()
        rf = model.breakdown(counters(rf_reads=1)).rf_energy_pj
        boc = model.breakdown(counters(boc_reads=1)).overhead_pj
        assert boc < rf * 0.05  # Table IV: ~1.4% plus interconnect

    def test_total(self):
        breakdown = EnergyBreakdown(rf_energy_pj=10.0, overhead_pj=2.0)
        assert breakdown.total_pj == 12.0


class TestNormalization:
    def test_identical_runs_normalize_to_one(self):
        model = EnergyModel()
        run = counters(rf_reads=100, rf_writes=50)
        normalized = model.normalized(run, run)
        assert normalized.total_pj == pytest.approx(1.0)

    def test_savings(self):
        model = EnergyModel()
        base = counters(rf_reads=100, rf_writes=100)
        improved = counters(rf_reads=40, rf_writes=50)
        assert model.savings(improved, base) == pytest.approx(0.55, abs=0.01)

    def test_bypass_overhead_reduces_savings(self):
        model = EnergyModel()
        base = counters(rf_reads=100)
        without_boc = counters(rf_reads=50)
        with_boc = counters(rf_reads=50, boc_reads=50)
        assert model.savings(with_boc, base) < model.savings(without_boc, base)

    def test_zero_baseline_rejected(self):
        model = EnergyModel()
        with pytest.raises(SimulationError):
            model.normalized(counters(rf_reads=1), counters())


class TestConfiguration:
    def test_half_capacity_boc_cheaper(self):
        full = EnergyModel(boc_capacity_entries=12)
        half = EnergyModel(boc_capacity_entries=6)
        run = counters(boc_reads=100)
        assert (half.breakdown(run).overhead_pj
                < full.breakdown(run).overhead_pj)

    def test_negative_interconnect_rejected(self):
        with pytest.raises(SimulationError):
            EnergyModel(interconnect_pj_per_access=-1.0)
