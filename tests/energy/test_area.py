"""Tests for area-overhead arithmetic (SS V-A hardware overhead)."""

import pytest

from repro.config import GPUConfig, baseline_config, bow_config, bow_wr_config
from repro.energy.area import (
    ADDED_NETWORK_AREA_MM2,
    REGISTER_BANK_AREA_MM2,
    AreaModel,
)
from repro.errors import ConfigError


class TestAreaReport:
    def test_network_under_3_percent_of_bank(self):
        # The paper: added network area < 3% of a register bank.
        report = AreaModel().report(bow_wr_config(3, half_size=True))
        assert report.network_fraction_of_bank < 0.03

    def test_network_area_is_published_value(self):
        assert ADDED_NETWORK_AREA_MM2 == pytest.approx(0.04)
        assert REGISTER_BANK_AREA_MM2 == pytest.approx(1.72)

    def test_total_chip_fraction_well_under_one_percent(self):
        report = AreaModel().report(bow_wr_config(3, half_size=True))
        assert report.fraction_of_chip < 0.01

    def test_half_size_smaller_than_full(self):
        model = AreaModel()
        full = model.report(bow_config(3))
        half = model.report(bow_wr_config(3, half_size=True))
        assert half.boc_storage_mm2 < full.boc_storage_mm2

    def test_per_sm_area_positive(self):
        report = AreaModel().report(bow_config(3))
        assert report.per_sm_mm2 > 0
        assert report.fraction_of_rf > 0

    def test_disabled_config_rejected(self):
        with pytest.raises(ConfigError):
            AreaModel().report(baseline_config())

    def test_num_sms_from_config(self):
        report = AreaModel(GPUConfig()).report(bow_config(3))
        assert report.num_sms == 56
