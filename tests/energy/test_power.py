"""Tests for chip-level power reporting."""

import pytest

from repro.config import BOWConfig, GPUConfig
from repro.energy.power import RF_SHARE_OF_CHIP_POWER, power_report
from repro.errors import SimulationError
from repro.stats.counters import Counters


def run_counters(cycles=10_000, rf_reads=5_000, rf_writes=2_000,
                 boc_reads=0, boc_writes=0):
    c = Counters()
    c.cycles = cycles
    c.rf_reads = rf_reads
    c.rf_writes = rf_writes
    c.boc_reads = boc_reads
    c.boc_writes = boc_writes
    return c


class TestPowerReport:
    def test_baseline_has_no_added_power(self):
        report = power_report(run_counters())
        assert report.added_total_w == 0.0
        assert report.rf_dynamic_w > 0
        assert report.rf_leakage_w > 0

    def test_bow_itemizes_added_structures(self):
        report = power_report(
            run_counters(boc_reads=3_000, boc_writes=2_000),
            bow=BOWConfig(window_size=3),
        )
        assert report.boc_dynamic_w > 0
        assert report.boc_leakage_w > 0
        assert report.interconnect_w > 0
        # The added structures are small next to the RF (the paper's
        # 33.2 mW vs 2.5 W comparison).
        assert report.added_total_w < report.rf_total_w * 0.2

    def test_scales_with_sm_count(self):
        small = power_report(run_counters(), gpu=GPUConfig(num_sms=56))
        # Same per-SM activity, half the SMs.
        half = power_report(run_counters(),
                            gpu=GPUConfig(num_sms=28))
        assert small.rf_dynamic_w == pytest.approx(2 * half.rf_dynamic_w)

    def test_bypassing_cuts_chip_power(self):
        baseline = power_report(run_counters())
        bow = power_report(
            run_counters(rf_reads=2_000, rf_writes=1_000,
                         boc_reads=3_000, boc_writes=1_000),
            bow=BOWConfig(window_size=3),
        )
        savings = bow.chip_level_savings(baseline)
        assert savings > 0
        # Chip-level savings are bounded by the RF's 18% share.
        assert savings < RF_SHARE_OF_CHIP_POWER

    def test_zero_cycles_rejected(self):
        with pytest.raises(SimulationError):
            power_report(run_counters(cycles=0))

    def test_format(self):
        text = power_report(run_counters()).format()
        assert "RF dynamic" in text and "56 SMs" in text

    def test_implied_chip_power(self):
        report = power_report(run_counters())
        chip = report.implied_chip_power_w(report.total_w)
        assert chip == pytest.approx(report.total_w / 0.18)

    def test_end_to_end_with_simulator(self):
        from repro.config import bow_config, bow_wr_config
        from repro.core.bow_sm import simulate_design
        from repro.kernels.suites import build_benchmark_trace

        # High enough occupancy that dynamic savings beat the added BOC
        # leakage (at trivial utilization leakage dominates — see the
        # module docstring).
        trace = build_benchmark_trace("SAD", num_warps=16, scale=0.12)
        base = simulate_design("baseline", trace)
        bow = simulate_design("bow", trace, window_size=3)
        base_power = power_report(base.counters)
        full = power_report(bow.counters, bow=bow_config(3))
        half = power_report(bow.counters,
                            bow=bow_wr_config(3, half_size=True))
        assert full.rf_dynamic_w < base_power.rf_dynamic_w
        assert full.chip_level_savings(base_power) > 0
        # Halving the BOC halves its leakage: better chip-level savings
        # — the storage optimization matters beyond area.
        assert (half.chip_level_savings(base_power)
                > full.chip_level_savings(base_power))
