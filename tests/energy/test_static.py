"""Tests for static (leakage) energy accounting."""

import pytest

from repro.config import BOWConfig, baseline_config, bow_wr_config
from repro.energy.static import StaticEnergyModel, total_energy
from repro.errors import SimulationError
from repro.stats.counters import Counters


def counters(cycles=1000, rf_reads=0):
    c = Counters()
    c.cycles = cycles
    c.rf_reads = rf_reads
    return c


class TestStaticBreakdown:
    def test_rf_leakage_scales_with_cycles(self):
        model = StaticEnergyModel()
        short = model.breakdown(counters(cycles=100))
        long = model.breakdown(counters(cycles=1000))
        assert long.rf_leakage_pj == pytest.approx(10 * short.rf_leakage_pj)

    def test_rf_leakage_magnitude(self):
        # 256 KB RF = 4 Table IV units of 111.84 mW; 1000 cycles at
        # 1 GHz = 1000 ns => 4 * 111.84 * 1000 pJ.
        breakdown = StaticEnergyModel().breakdown(counters(cycles=1000))
        assert breakdown.rf_leakage_pj == pytest.approx(4 * 111.84 * 1000)

    def test_baseline_has_no_boc_leakage(self):
        breakdown = StaticEnergyModel().breakdown(
            counters(), bow=baseline_config()
        )
        assert breakdown.boc_leakage_pj == 0.0

    def test_bow_boc_leakage_small_vs_rf(self):
        breakdown = StaticEnergyModel().breakdown(
            counters(), bow=BOWConfig(window_size=3)
        )
        assert 0 < breakdown.boc_leakage_pj < breakdown.rf_leakage_pj * 0.10

    def test_half_size_leaks_less(self):
        model = StaticEnergyModel()
        full = model.breakdown(counters(), bow=BOWConfig(window_size=3))
        half = model.breakdown(counters(),
                               bow=bow_wr_config(3, half_size=True))
        assert half.boc_leakage_pj < full.boc_leakage_pj

    def test_clock_validation(self):
        with pytest.raises(SimulationError):
            StaticEnergyModel(clock_ghz=0)


class TestResizedRf:
    def test_savings_proportional(self):
        model = StaticEnergyModel()
        run = counters(cycles=500)
        half = model.resized_rf_savings(0.5, run)
        full = model.breakdown(run).rf_leakage_pj
        assert half == pytest.approx(full / 2)

    def test_fraction_validated(self):
        with pytest.raises(SimulationError):
            StaticEnergyModel().resized_rf_savings(1.5, counters())


class TestTotalEnergy:
    def test_combines_dynamic_and_static(self):
        report = total_energy(counters(cycles=100, rf_reads=10))
        assert report.dynamic_pj > 0
        assert report.static_pj > 0
        assert report.total_pj == pytest.approx(
            report.dynamic_pj + report.static_pj
        )

    def test_bow_adds_boc_leakage(self):
        run = counters(cycles=100, rf_reads=10)
        base = total_energy(run)
        bow = total_energy(run, bow=BOWConfig(window_size=3))
        assert bow.static_pj > base.static_pj
