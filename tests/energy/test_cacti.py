"""Tests pinning the Table IV component parameters."""

import pytest

from repro.energy.cacti import (
    BOC_PARAMS,
    REGISTER_BANK_PARAMS,
    ComponentParams,
    boc_params_for_capacity,
)
from repro.errors import ConfigError


class TestTable4Constants:
    def test_boc_parameters(self):
        assert BOC_PARAMS.size_bytes == 1536  # 1.5 KB
        assert BOC_PARAMS.vdd == 0.96
        assert BOC_PARAMS.access_energy_pj == 2.72
        assert BOC_PARAMS.leakage_power_mw == 1.11

    def test_bank_parameters(self):
        assert REGISTER_BANK_PARAMS.size_bytes == 64 * 1024
        assert REGISTER_BANK_PARAMS.access_energy_pj == 185.26
        assert REGISTER_BANK_PARAMS.leakage_power_mw == 111.84

    def test_access_energy_ratio_matches_paper(self):
        # Table IV reports ~1.4%.
        ratio = BOC_PARAMS.access_energy_pj / REGISTER_BANK_PARAMS.access_energy_pj
        assert ratio == pytest.approx(0.0147, abs=0.001)

    def test_leakage_ratio_matches_paper(self):
        # Table IV reports ~0.9%.
        ratio = BOC_PARAMS.leakage_power_mw / REGISTER_BANK_PARAMS.leakage_power_mw
        assert ratio == pytest.approx(0.0099, abs=0.001)


class TestComponentParams:
    def test_leakage_energy(self):
        # 1 mW for 1000 cycles at 1 GHz = 1000 pJ.
        component = ComponentParams("x", 100, 1.0, 1.0, 1.0)
        assert component.leakage_energy_pj(1000) == pytest.approx(1000.0)

    def test_leakage_scales_with_clock(self):
        component = ComponentParams("x", 100, 1.0, 1.0, 2.0)
        assert component.leakage_energy_pj(100, clock_ghz=2.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ComponentParams("x", 0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            ComponentParams("x", 1, 1.0, -1.0, 1.0)
        with pytest.raises(ConfigError):
            ComponentParams("x", 1, 1.0, 1.0, 1.0).leakage_energy_pj(-1)


class TestCapacityScaling:
    def test_half_capacity_halves_energy(self):
        half = boc_params_for_capacity(6)
        assert half.access_energy_pj == pytest.approx(
            BOC_PARAMS.access_energy_pj / 2
        )
        assert half.size_bytes == 768

    def test_full_capacity_is_reference(self):
        full = boc_params_for_capacity(12)
        assert full.access_energy_pj == pytest.approx(
            BOC_PARAMS.access_energy_pj
        )

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            boc_params_for_capacity(0)
