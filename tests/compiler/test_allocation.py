"""Tests for transient-register allocation elision (SS IV-B.2a)."""

import pytest

from repro.compiler.allocation import (
    effective_register_demand,
    linear_register_demand,
)
from repro.errors import CompilerError
from repro.isa import parse_program
from repro.kernels.cfg import straightline_kernel
from repro.kernels.snippets import BTREE_SNIPPET_ASM
from repro.kernels.suites import get_profile
from repro.kernels.synthetic import generate_kernel


class TestLinear:
    def test_pure_transient_kernel(self):
        result = linear_register_demand(parse_program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r3], $r2
        """), window_size=3)
        # $r1 and $r2 die inside the window; $r3 is read-only (no write).
        assert result.transient_registers == 2
        assert result.transient_write_fraction == pytest.approx(1.0)
        assert result.total_registers == 3

    def test_live_out_register_needs_rf(self):
        result = linear_register_demand(
            parse_program("mov.u32 $r1, 0x1"),
            window_size=3,
            live_out=frozenset({1}),
        )
        assert result.transient_registers == 0
        assert result.rf_resident_registers == 1

    def test_register_savings_fraction(self):
        result = linear_register_demand(parse_program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """), window_size=3)
        assert result.register_savings == pytest.approx(1.0)

    def test_btree_snippet_demand(self):
        result = linear_register_demand(parse_program(BTREE_SNIPPET_ASM), 3)
        # $r1 and $r3 must reach the RF (Table I); the transient set is
        # everything else that is written ($r0, $r2, $r4).
        assert result.transient_registers == 3


class TestCfg:
    def test_mixed_kernel(self):
        kernel = straightline_kernel("k", parse_program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            mov.u32 $r5, 0x0
            mov.u32 $r6, 0x0
            add.u32 $r3, $r1, $r2
        """))
        result = effective_register_demand(kernel, 3)
        # $r1 is reused beyond the window => RF-resident.
        assert result.rf_resident_registers >= 1
        assert 0.0 <= result.transient_write_fraction <= 1.0

    def test_rejects_bad_window(self):
        kernel = straightline_kernel("k", parse_program("mov.u32 $r1, 0x1"))
        with pytest.raises(CompilerError):
            effective_register_demand(kernel, 0)

    def test_benchmark_transient_fraction_near_paper(self):
        # The paper reports ~52% of operands transient at IW=3; the
        # synthetic suite should land in the same region.
        kernel = generate_kernel(get_profile("BACKPROP").spec)
        result = effective_register_demand(kernel, 3)
        assert 0.3 <= result.transient_write_fraction <= 0.75

    def test_window_size_monotone(self):
        kernel = generate_kernel(get_profile("NW").spec)
        fractions = [
            effective_register_demand(kernel, iw).transient_write_fraction
            for iw in (2, 3, 5)
        ]
        assert fractions[0] <= fractions[1] <= fractions[2]
