"""Tests for backward liveness analysis."""

from repro.compiler.liveness import compute_liveness
from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG, straightline_kernel


def simple_kernel():
    return straightline_kernel("simple", parse_program("""
        mov.u32 $r1, 0x1
        add.u32 $r2, $r1, $r1
        st.global.u32 [$r3], $r2
    """))


class TestStraightline:
    def test_live_in_contains_unwritten_reads(self):
        result = compute_liveness(simple_kernel())
        assert result.live_in["entry"] == frozenset({3})

    def test_per_instruction_live_out(self):
        result = compute_liveness(simple_kernel())
        live = result.per_instruction_live_out["entry"]
        # After mov: $r1 (for the add), $r3 (for the store).
        assert live[0] == frozenset({1, 3})
        # After add: $r2 and $r3 for the store.
        assert live[1] == frozenset({2, 3})
        # After the store: nothing.
        assert live[2] == frozenset()

    def test_is_live_after_helper(self):
        result = compute_liveness(simple_kernel())
        assert result.is_live_after("entry", 0, 1)
        assert not result.is_live_after("entry", 1, 1)

    def test_boundary_registers_live_at_exit(self):
        result = compute_liveness(simple_kernel(), boundary=frozenset({2}))
        live = result.per_instruction_live_out["entry"]
        assert 2 in live[2]


class TestAcrossBlocks:
    def _cfg(self):
        return KernelCFG(
            "cross",
            [
                BasicBlock("a", parse_program("mov.u32 $r1, 0x1"),
                           [Edge("b", 0.5), Edge("c", 0.5)]),
                BasicBlock("b", parse_program("add.u32 $r2, $r1, $r1"),
                           [Edge("d")]),
                BasicBlock("c", parse_program("mov.u32 $r2, 0x9"),
                           [Edge("d")]),
                BasicBlock("d", parse_program("st.global.u32 [$r2], $r1")),
            ],
            entry="a",
        )

    def test_value_live_across_branch(self):
        result = compute_liveness(self._cfg())
        # $r1 used in b and d: live out of a.
        assert 1 in result.live_out["a"]
        # $r2 defined on both paths, used in d.
        assert 2 in result.live_out["b"]
        assert 2 in result.live_out["c"]
        assert 2 not in result.live_in["a"]

    def test_loop_keeps_accumulator_live(self):
        cfg = KernelCFG(
            "loop",
            [
                BasicBlock("entry", parse_program("mov.u32 $r1, 0x0"),
                           [Edge("body")]),
                BasicBlock("body", parse_program("add.u32 $r1, $r1, $r2"),
                           [Edge("body", 0.8), Edge("exit", 0.2)]),
                BasicBlock("exit", parse_program("st.global.u32 [$r3], $r1")),
            ],
            entry="entry",
        )
        result = compute_liveness(cfg)
        assert 1 in result.live_out["body"]  # live around the back edge
        assert 2 in result.live_in["entry"]  # read-only input


class TestSinkRegister:
    def test_sink_never_live(self):
        kernel = straightline_kernel("sink", parse_program("""
            set.ne.s32.s32 $p0/$o127, $r1, $r2
            st.global.u32 [$r3], $r1
        """))
        result = compute_liveness(kernel)
        from repro.isa.registers import SINK_REGISTER

        assert SINK_REGISTER.id not in result.live_in["entry"]
