"""Tests for the compile() driver."""

import pytest

from repro.compiler import compile_kernel
from repro.compiler.writeback import WritebackClass
from repro.isa import WritebackHint, parse_program
from repro.kernels.cfg import straightline_kernel
from repro.kernels.suites import get_profile
from repro.kernels.synthetic import generate_kernel


@pytest.fixture
def compiled():
    kernel = straightline_kernel("k", parse_program("""
        mov.u32 $r1, 0x1
        add.u32 $r2, $r1, $r1
        st.global.u32 [$r3], $r2
    """))
    return compile_kernel(kernel, window_size=3)


class TestCompileKernel:
    def test_result_fields(self, compiled):
        assert compiled.window_size == 3
        assert "entry" in compiled.classifications
        assert compiled.allocation.total_registers == 3

    def test_instructions_annotated_in_place(self, compiled):
        block = compiled.cfg.blocks["entry"]
        assert block.instructions[0].hint is WritebackHint.OC_ONLY

    def test_hint_map_covers_all_dests(self, compiled):
        dest_uids = [
            inst.uid
            for block in compiled.cfg
            for inst in block.instructions
            if inst.dest is not None
        ]
        assert set(dest_uids) <= set(compiled.hints)

    def test_hint_distribution(self, compiled):
        dist = compiled.hint_distribution()
        assert dist[WritebackClass.OC_ONLY] == pytest.approx(1.0)

    def test_benchmark_kernel_compiles(self):
        kernel = generate_kernel(get_profile("SRAD").spec)
        compiled = compile_kernel(kernel, window_size=3)
        dist = compiled.hint_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        # All three targets appear in a realistic kernel.
        assert dist[WritebackClass.RF_ONLY] > 0
        assert dist[WritebackClass.OC_ONLY] > 0
        assert dist[WritebackClass.BOTH] > 0
