"""Tests for the backward worklist dataflow framework."""

import pytest

from repro.compiler.dataflow import BackwardDataflow
from repro.errors import CompilerError
from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG


def chain_cfg():
    """a -> b -> c, with c reading what a defines."""
    return KernelCFG(
        "chain",
        [
            BasicBlock("a", parse_program("mov.u32 $r1, 0x1"), [Edge("b")]),
            BasicBlock("b", parse_program("mov.u32 $r2, 0x2"), [Edge("c")]),
            BasicBlock("c", parse_program("add.u32 $r3, $r1, $r2")),
        ],
        entry="a",
    )


def loop_cfg():
    """entry -> body <-> body -> exit; body reads and writes $r1."""
    return KernelCFG(
        "loop",
        [
            BasicBlock("entry", parse_program("mov.u32 $r1, 0x0"),
                       [Edge("body")]),
            BasicBlock("body", parse_program("add.u32 $r1, $r1, $r1"),
                       [Edge("body", 0.9), Edge("exit", 0.1)]),
            BasicBlock("exit", parse_program("st.global.u32 [$r2], $r1")),
        ],
        entry="entry",
    )


def liveness_transfer(cfg):
    use_def = {}
    for block in cfg:
        uses, defs = set(), set()
        for inst in block.instructions:
            for src in inst.sources:
                if src.id not in defs:
                    uses.add(src.id)
            if inst.dest is not None:
                defs.add(inst.dest.id)
        use_def[block.label] = (frozenset(uses), frozenset(defs))

    def transfer(label, out_fact):
        uses, defs = use_def[label]
        return uses | (out_fact - defs)

    return transfer


class TestSolve:
    def test_chain_propagates_uses_backward(self):
        cfg = chain_cfg()
        solution = BackwardDataflow(cfg, liveness_transfer(cfg)).solve()
        assert solution["a"]["out"] == frozenset({1})
        assert solution["b"]["out"] == frozenset({1, 2})
        assert solution["c"]["out"] == frozenset()

    def test_loop_reaches_fixed_point(self):
        cfg = loop_cfg()
        solution = BackwardDataflow(cfg, liveness_transfer(cfg)).solve()
        # $r1 is live around the loop; $r2 is live into everything
        # (read at exit, never defined).
        assert 1 in solution["body"]["in"]
        assert 2 in solution["entry"]["in"]

    def test_boundary_fact_applied_at_exits(self):
        cfg = chain_cfg()
        solution = BackwardDataflow(
            cfg, liveness_transfer(cfg), boundary=frozenset({3})
        ).solve()
        assert 3 in solution["c"]["out"]
        # $r3 is defined in c, so it does not leak further back.
        assert 3 not in solution["b"]["out"]

    def test_iteration_guard(self):
        cfg = loop_cfg()
        with pytest.raises(CompilerError):
            BackwardDataflow(cfg, liveness_transfer(cfg)).solve(max_iterations=1)
