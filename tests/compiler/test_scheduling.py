"""Tests for bypass-aware instruction scheduling (footnote-1 extension)."""

import random

import pytest

from repro.compiler.scheduling import (
    build_dependence_dag,
    schedule_block,
    schedule_kernel,
)
from repro.core.window import read_bypass_counts
from repro.errors import CompilerError
from repro.gpu.reference import execute_reference
from repro.isa import parse_program
from repro.kernels.cfg import straightline_kernel
from repro.kernels.trace import KernelTrace, WarpTrace


def program(text):
    return parse_program(text)


class TestDependenceDag:
    def test_raw_edge(self):
        dag = build_dependence_dag(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """))
        assert 0 in dag[1]

    def test_waw_edge(self):
        dag = build_dependence_dag(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
        """))
        assert 0 in dag[1]

    def test_war_edge(self):
        dag = build_dependence_dag(program("""
            add.u32 $r2, $r1, $r1
            mov.u32 $r1, 0x2
        """))
        assert 0 in dag[1]

    def test_independent_no_edge(self):
        dag = build_dependence_dag(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
        """))
        assert not dag[1]

    def test_memory_order_preserved(self):
        dag = build_dependence_dag(program("""
            st.global.u32 [$r1], $r2
            ld.global.u32 $r3, [$r4]
        """))
        assert 0 in dag[1]

    def test_control_orders_everything(self):
        dag = build_dependence_dag(program("""
            mov.u32 $r1, 0x1
            bra 0x40
            mov.u32 $r2, 0x2
        """))
        assert 0 in dag[1]  # mov before branch
        assert 1 in dag[2]  # branch before later mov


class TestScheduleBlock:
    def test_identity_when_no_improvement(self):
        block = program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """)
        result = schedule_block(block, 3)
        assert result.permutation == (0, 1)
        assert result.moved == 0

    def test_pulls_consumer_toward_producer(self):
        # $r1's consumer sits 4 instructions away behind independent
        # fillers; scheduling should shrink the distance below IW=3.
        block = program("""
            mov.u32 $r1, 0x1
            mov.u32 $r4, 0x4
            mov.u32 $r5, 0x5
            mov.u32 $r6, 0x6
            add.u32 $r2, $r1, $r1
        """)
        result = schedule_block(block, 3)
        ordered = [str(i) for i in result.instructions]
        producer = ordered.index("mov $r1, 0x00000001")
        consumer = ordered.index("add $r2, $r1, $r1")
        assert consumer - producer < 3
        assert result.moved > 0

    def test_never_regresses_block_locality(self):
        rng = random.Random(5)
        ops = ["mov.u32 $r{d}, 0x1", "add.u32 $r{d}, $r{a}, $r{b}"]
        for trial in range(20):
            lines = []
            for _ in range(12):
                template = rng.choice(ops)
                lines.append(template.format(
                    d=rng.randint(1, 6), a=rng.randint(1, 6),
                    b=rng.randint(1, 6),
                ))
            block = program("\n".join(lines))
            before, total = read_bypass_counts(block, 3)
            result = schedule_block(block, 3)
            after, _ = read_bypass_counts(list(result.instructions), 3)
            assert after >= before, trial

    def test_rejects_bad_window(self):
        with pytest.raises(CompilerError):
            schedule_block(program("nop"), 0)


class TestSemanticsPreserved:
    def _run(self, instructions):
        trace = KernelTrace(name="s", warps=[WarpTrace(0, list(instructions))])
        return execute_reference(trace)

    def test_scheduled_block_computes_same_values(self):
        block = program("""
            mov.u32 $r1, 0x1
            mov.u32 $r4, 0x4
            mov.u32 $r5, 0x5
            add.u32 $r2, $r1, $r1
            add.u32 $r3, $r4, $r5
            st.global.u32 [$r2], $r3
        """)
        result = schedule_block(block, 3)
        assert self._run(block).memory == self._run(result.instructions).memory

    def test_random_programs_preserved(self):
        rng = random.Random(11)
        for trial in range(15):
            lines = []
            for _ in range(14):
                choice = rng.random()
                d, a, b = (rng.randint(1, 7) for _ in range(3))
                if choice < 0.5:
                    lines.append(f"add.u32 $r{d}, $r{a}, $r{b}")
                elif choice < 0.7:
                    lines.append(f"mov.u32 $r{d}, 0x{rng.randint(0, 255):x}")
                elif choice < 0.85:
                    lines.append(f"ld.global.u32 $r{d}, [$r{a}]")
                else:
                    lines.append(f"st.global.u32 [$r{a}], $r{b}")
            block = program("\n".join(lines))
            scheduled = schedule_block(block, 3).instructions
            before = self._run(block)
            after = self._run(scheduled)
            assert before.memory == after.memory, trial
            assert before.registers == after.registers, trial


class TestScheduleKernel:
    def test_in_place_rewrite(self):
        kernel = straightline_kernel("k", program("""
            mov.u32 $r1, 0x1
            mov.u32 $r4, 0x4
            mov.u32 $r5, 0x5
            mov.u32 $r6, 0x6
            add.u32 $r2, $r1, $r1
        """))
        moved = schedule_kernel(kernel, 3)
        assert moved > 0
        bypassed, _ = read_bypass_counts(
            kernel.blocks["entry"].instructions, 3
        )
        assert bypassed >= 2
