"""Tests for dead-code elimination."""

import pytest

from repro.compiler.dce import (
    dead_write_fraction,
    eliminate_dead_code,
    eliminate_dead_code_block,
)
from repro.gpu.reference import execute_reference
from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG, straightline_kernel
from repro.kernels.trace import KernelTrace, WarpTrace


def program(text):
    return parse_program(text)


class TestBlockLevel:
    def test_removes_unread_write(self):
        cleaned = eliminate_dead_code_block(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            st.global.u32 [$r3], $r2
        """))
        assert [str(i) for i in cleaned] == [
            "mov $r2, 0x00000002",
            "st.global $r3, $r2",
        ]

    def test_cascading_removal(self):
        # Removing the dead consumer kills its producer too.
        cleaned = eliminate_dead_code_block(program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            nop
        """))
        assert [i.opcode.name for i in cleaned] == ["nop"]

    def test_live_out_protects(self):
        cleaned = eliminate_dead_code_block(
            program("mov.u32 $r1, 0x1"), live_out=frozenset({1})
        )
        assert len(cleaned) == 1

    def test_overwritten_before_read_is_dead(self):
        cleaned = eliminate_dead_code_block(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
            st.global.u32 [$r3], $r1
        """))
        assert len(cleaned) == 2
        assert cleaned[0].immediate == 2

    def test_side_effects_never_removed(self):
        text = """
            ld.global.u32 $r1, [$r2]
            st.global.u32 [$r2], $r3
            set.ne.s32.s32 $p0/$o127, $r4, $r5
            bra 0x40
        """
        cleaned = eliminate_dead_code_block(program(text))
        assert len(cleaned) == 4  # load kept: memory access is an effect

    def test_semantics_preserved(self):
        text = """
            mov.u32 $r1, 0x1
            mov.u32 $r9, 0x63
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r1], $r2
        """
        original = program(text)
        cleaned = eliminate_dead_code_block(original)
        ref_a = execute_reference(
            KernelTrace(name="a", warps=[WarpTrace(0, list(original))])
        )
        ref_b = execute_reference(
            KernelTrace(name="b", warps=[WarpTrace(0, list(cleaned))])
        )
        assert ref_a.memory == ref_b.memory


class TestKernelLevel:
    def test_cross_block_liveness_respected(self):
        cfg = KernelCFG("k", [
            BasicBlock("a", program("mov.u32 $r1, 0x1"), [Edge("b")]),
            BasicBlock("b", program("st.global.u32 [$r2], $r1")),
        ], entry="a")
        result = eliminate_dead_code(cfg)
        assert result.removed == 0  # $r1 consumed in the next block

    def test_kernel_fixpoint(self):
        kernel = straightline_kernel("k", program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            add.u32 $r3, $r2, $r2
            st.global.u32 [$r9], $r9
        """))
        result = eliminate_dead_code(kernel)
        assert result.removed == 3
        assert result.dead_fraction == pytest.approx(3 / 4)

    def test_benchmark_kernels_contain_dead_writes(self):
        # The calibration note: part of the suite's write-bypass headroom
        # is dead code (as in real unoptimized kernels).
        from repro.kernels.suites import get_profile
        from repro.kernels.synthetic import generate_kernel

        cfg = generate_kernel(get_profile("WP").spec)
        result = eliminate_dead_code(cfg)
        assert 0.0 <= result.dead_fraction < 0.5


class TestDeadWriteFraction:
    def test_fraction(self):
        fraction = dead_write_fraction(program("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            st.global.u32 [$r3], $r2
        """))
        assert fraction == pytest.approx(0.5)

    def test_no_writes(self):
        assert dead_write_fraction(program("nop")) == 0.0
