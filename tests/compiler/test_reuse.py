"""Tests for reuse-distance analysis."""

import pytest

from repro.compiler.reuse import (
    distance_histogram,
    read_bypass_fraction,
    reuse_distances,
)
from repro.errors import CompilerError
from repro.isa import parse_program


def trace(text):
    return parse_program(text)


class TestReuseDistances:
    def test_first_access_has_no_distance(self):
        events = list(reuse_distances(trace("add.u32 $r1, $r2, $r3")))
        assert all(e.distance is None for e in events)

    def test_distance_counts_instructions(self):
        program = trace("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            add.u32 $r3, $r1, $r2
        """)
        events = [e for e in reuse_distances(program) if not e.is_write]
        by_reg = {e.register_id: e.distance for e in events}
        assert by_reg[1] == 2  # written at 0, read at 2
        assert by_reg[2] == 1

    def test_same_instruction_read_then_write(self):
        # add $r1, $r1, $r1: reads see the previous access; the write
        # sees the reads at distance zero.
        program = trace("""
            mov.u32 $r1, 0x1
            add.u32 $r1, $r1, $r1
        """)
        events = list(reuse_distances(program))
        write_events = [e for e in events if e.is_write and e.index == 1]
        assert write_events[0].distance == 0

    def test_sink_register_writes_skipped(self):
        program = trace("set.ne.s32.s32 $p0/$o127, $r1, $r2")
        assert all(not e.is_write for e in reuse_distances(program))


class TestReadBypassFraction:
    def test_no_reuse_means_zero(self):
        program = trace("""
            add.u32 $r1, $r2, $r3
            add.u32 $r4, $r5, $r6
        """)
        assert read_bypass_fraction(program, 3) == 0.0

    def test_adjacent_reuse_bypassed_at_iw2(self):
        program = trace("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """)
        assert read_bypass_fraction(program, 2) == 1.0

    def test_distance_equal_to_window_not_bypassed(self):
        program = trace("""
            mov.u32 $r1, 0x1
            mov.u32 $r9, 0x2
            add.u32 $r2, $r1, $r1
        """)
        # Distance 2 needs IW >= 3.
        assert read_bypass_fraction(program, 2) == pytest.approx(0.5)
        assert read_bypass_fraction(program, 3) == 1.0

    def test_monotone_in_window(self):
        program = trace("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            mov.u32 $r3, 0x3
            add.u32 $r4, $r1, $r2
            add.u32 $r5, $r3, $r4
        """)
        fractions = [read_bypass_fraction(program, iw) for iw in range(1, 6)]
        assert fractions == sorted(fractions)

    def test_window_one_only_same_instruction(self):
        program = trace("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """)
        # IW=1: no cross-instruction forwarding; the second read of $r1
        # in the same instruction has distance 0.
        assert read_bypass_fraction(program, 1) == pytest.approx(0.5)

    def test_rejects_bad_window(self):
        with pytest.raises(CompilerError):
            read_bypass_fraction([], 0)


class TestHistogram:
    def test_histogram_keys(self):
        program = trace("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            add.u32 $r3, $r1, $r2
        """)
        hist = distance_histogram(program)
        assert hist[1] >= 1
        assert sum(hist.values()) == 4

    def test_clamping(self):
        lines = ["mov.u32 $r1, 0x1"]
        lines += [f"mov.u32 $r{2 + i}, 0x0" for i in range(30)]
        lines += ["add.u32 $r40, $r1, $r1"]
        hist = distance_histogram(trace("\n".join(lines)), max_distance=8)
        assert 8 in hist  # the distant read clamps to the max bucket
