"""Tests for the BOW-WR writeback classifier — the heart of the paper's
compiler contribution (SS IV-B)."""

import pytest

from repro.compiler.writeback import (
    WritebackClass,
    annotate_cfg,
    classify_cfg,
    classify_linear_writes,
    hint_distribution,
)
from repro.errors import CompilerError
from repro.isa import WritebackHint, parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG, straightline_kernel


def classify(text, window_size=3, live_out=frozenset()):
    return classify_linear_writes(parse_program(text), window_size, live_out)


def by_reg_index(items):
    return {(item.register_id, item.index): item.writeback for item in items}


class TestChains:
    def test_transient_chain_is_oc_only(self):
        # Fig. 6 style: value produced, consumed next instruction, dead.
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r3], $r2
        """)
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.OC_ONLY
        assert classes[(2, 1)] is WritebackClass.OC_ONLY

    def test_reuse_beyond_window_is_rf_only(self):
        items = classify("""
            mov.u32 $r1, 0x1
            mov.u32 $r4, 0x0
            mov.u32 $r5, 0x0
            mov.u32 $r6, 0x0
            add.u32 $r2, $r1, $r1
        """)
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.RF_ONLY

    def test_reuse_inside_and_beyond_is_both(self):
        # Read at distance 1 (forwarded) and at distance 4 (from RF).
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            mov.u32 $r5, 0x0
            mov.u32 $r6, 0x0
            add.u32 $r3, $r1, $r2
        """)
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.BOTH

    def test_extended_window_chains_stay_resident(self):
        # Every gap < IW: accesses at 0,1,2,3 then dead => transient,
        # even though the last read is 3 instructions after the write.
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r4
            add.u32 $r3, $r1, $r5
            add.u32 $r6, $r1, $r2
        """)
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.OC_ONLY

    def test_chain_gap_at_window_breaks_residency(self):
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r4
            mov.u32 $r5, 0x0
            mov.u32 $r6, 0x0
            add.u32 $r3, $r1, $r2
        """)
        # Read at 1 (forwarded), then gap 3 >= IW: the second read needs
        # the RF => BOTH.
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.BOTH

    def test_dead_write_classified_dead(self):
        items = classify("mov.u32 $r1, 0x1")
        assert items[0].writeback is WritebackClass.DEAD

    def test_live_out_forces_rf(self):
        items = classify("mov.u32 $r1, 0x1", live_out=frozenset({1}))
        assert items[0].writeback is WritebackClass.RF_ONLY
        assert items[0].needs_rf

    def test_overwritten_value_not_live_out(self):
        # live_out applies only to the final write of the register.
        items = classify("""
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
        """, live_out=frozenset({1}))
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.DEAD
        assert classes[(1, 1)] is WritebackClass.RF_ONLY

    def test_read_at_redefinition_belongs_to_old_value(self):
        # add $r1, $r1, $r2 reads the old $r1 and writes a new one.
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r1, $r1, $r2
        """)
        classes = by_reg_index(items)
        assert classes[(1, 0)] is WritebackClass.OC_ONLY

    def test_rejects_bad_window(self):
        with pytest.raises(CompilerError):
            classify("mov.u32 $r1, 0x1", window_size=0)


class TestBtreeSnippet:
    """Pin the classifier to the paper's own worked example."""

    def test_table1_compiler_column(self, snippet):
        items = classify_linear_writes(snippet, 3)
        rf_writes = {}
        for item in items:
            if item.needs_rf:
                rf_writes[item.register_id] = rf_writes.get(
                    item.register_id, 0) + 1
        # Paper Table I, BOW-WR column: r0=0, r1=1, r2=0, r3=1.
        assert rf_writes.get(0, 0) == 0
        assert rf_writes.get(1, 0) == 1
        assert rf_writes.get(2, 0) == 0
        assert rf_writes.get(3, 0) == 1
        assert sum(rf_writes.values()) == 2

    def test_r3_is_rf_only(self, snippet):
        # ld.global $r3 (line 2): first reuse at line 14, outside IW=3.
        items = classify_linear_writes(snippet, 3)
        first = next(i for i in items if i.register_id == 3)
        assert first.writeback is WritebackClass.RF_ONLY

    def test_r2_line3_is_transient(self, snippet):
        # mov $r2 (line 3): reuses at 4, 5, 7 all within gaps < 3.
        items = classify_linear_writes(snippet, 3)
        first = next(i for i in items if i.register_id == 2)
        assert first.writeback is WritebackClass.OC_ONLY
        assert first.reads_in_window == 3

    def test_r1_line10_is_both(self, snippet):
        # add $r1 (line 10): forwarded to line 11, read again at line 14.
        items = classify_linear_writes(snippet, 3)
        r1_items = [i for i in items if i.register_id == 1]
        assert r1_items[-1].writeback is WritebackClass.BOTH


class TestCfgClassification:
    def test_block_boundary_conservative(self):
        # $r1 is written at the end of block a and read at the start of
        # block b: within IW dynamically, but the compiler must not tag
        # it OC-only across the boundary.
        cfg = KernelCFG(
            "cross",
            [
                BasicBlock("a", parse_program("mov.u32 $r1, 0x1"),
                           [Edge("b")]),
                BasicBlock("b", parse_program("st.global.u32 [$r2], $r1")),
            ],
            entry="a",
        )
        classified = classify_cfg(cfg, 3)
        assert classified["a"][0].writeback is WritebackClass.RF_ONLY

    def test_annotate_rewrites_hints(self):
        kernel = straightline_kernel("k", parse_program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r3], $r2
        """))
        hints = annotate_cfg(kernel, 3)
        block = kernel.blocks["entry"]
        assert block.instructions[0].hint is WritebackHint.OC_ONLY
        assert block.instructions[1].hint is WritebackHint.OC_ONLY
        assert hints[block.instructions[0].uid] is WritebackHint.OC_ONLY

    def test_annotate_preserves_uids(self):
        kernel = straightline_kernel("k", parse_program("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """))
        uids_before = [i.uid for i in kernel.blocks["entry"].instructions]
        annotate_cfg(kernel, 3)
        uids_after = [i.uid for i in kernel.blocks["entry"].instructions]
        assert uids_before == uids_after


class TestHintDistribution:
    def test_distribution_sums_to_one(self, snippet):
        items = classify_linear_writes(snippet, 3)
        dist = hint_distribution(items)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_dead_folds_into_oc_only(self):
        items = classify("mov.u32 $r1, 0x1")
        dist = hint_distribution(items)
        assert dist[WritebackClass.OC_ONLY] == pytest.approx(1.0)

    def test_weighted_distribution(self):
        items = classify("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """)
        # Weight the first write 3x, drop the second.
        dist = hint_distribution(items, weights={0: 3, 1: 0})
        assert dist[WritebackClass.OC_ONLY] == pytest.approx(1.0)

    def test_empty_distribution(self):
        dist = hint_distribution([])
        assert all(v == 0.0 for v in dist.values())
