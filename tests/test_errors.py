"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CompilerError,
    ConfigError,
    DeadlockError,
    EncodingError,
    ExperimentError,
    IsaError,
    KernelError,
    ParseError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    SimulationError,
)


@pytest.mark.parametrize("exc_class", [
    ConfigError, IsaError, ParseError, EncodingError, KernelError,
    CompilerError, SimulationError, DeadlockError, ExperimentError,
])
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, ReproError)


def test_parse_error_is_isa_error():
    assert issubclass(ParseError, IsaError)
    assert issubclass(EncodingError, IsaError)


def test_deadlock_is_simulation_error():
    assert issubclass(DeadlockError, SimulationError)


def test_parse_error_formats_location():
    err = ParseError("bad operand", line_number=7, line="mov $r1")
    assert "line 7" in str(err)
    assert "mov $r1" in str(err)
    assert err.line_number == 7


def test_parse_error_without_location():
    err = ParseError("bad operand")
    assert str(err) == "bad operand"


def test_deadlock_error_carries_cycle():
    err = DeadlockError("stuck", cycle=123)
    assert err.cycle == 123
    assert "123" in str(err)


def test_service_errors_form_a_hierarchy():
    assert issubclass(ServiceOverloadedError, ServiceError)
    assert issubclass(ServiceTimeoutError, ServiceError)


def test_overloaded_error_carries_retry_hint_and_pickles():
    import pickle

    err = ServiceOverloadedError("queue full", retry_after_ms=750)
    assert err.retry_after_ms == 750
    clone = pickle.loads(pickle.dumps(err))
    assert clone.retry_after_ms == 750
    assert str(clone) == str(err)


def test_timeout_error_formats_deadline_and_pickles():
    import pickle

    err = ServiceTimeoutError("BFS/bow IW3", deadline_ms=200.0)
    assert "BFS/bow IW3" in str(err)
    assert "200" in str(err)
    clone = pickle.loads(pickle.dumps(err))
    assert clone.label == "BFS/bow IW3"
    assert clone.deadline_ms == 200.0
