"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CompilerError,
    ConfigError,
    DeadlockError,
    EncodingError,
    ExperimentError,
    IsaError,
    KernelError,
    ParseError,
    ReproError,
    SimulationError,
)


@pytest.mark.parametrize("exc_class", [
    ConfigError, IsaError, ParseError, EncodingError, KernelError,
    CompilerError, SimulationError, DeadlockError, ExperimentError,
])
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, ReproError)


def test_parse_error_is_isa_error():
    assert issubclass(ParseError, IsaError)
    assert issubclass(EncodingError, IsaError)


def test_deadlock_is_simulation_error():
    assert issubclass(DeadlockError, SimulationError)


def test_parse_error_formats_location():
    err = ParseError("bad operand", line_number=7, line="mov $r1")
    assert "line 7" in str(err)
    assert "mov $r1" in str(err)
    assert err.line_number == 7


def test_parse_error_without_location():
    err = ParseError("bad operand")
    assert str(err) == "bad operand"


def test_deadlock_error_carries_cycle():
    err = DeadlockError("stuck", cycle=123)
    assert err.cycle == 123
    assert "123" in str(err)
