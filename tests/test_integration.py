"""End-to-end integration: benchmarks through every design.

These runs are the same shape as the paper's evaluation pipeline:
benchmark -> (compiler) -> timing simulation -> counters -> energy.
"""

import pytest

from repro import EnergyModel, build_benchmark_trace, simulate_design
from repro.compiler import compile_kernel
from repro.core.window import read_bypass_counts
from repro.gpu.reference import execute_reference
from repro.kernels.suites import get_profile
from repro.kernels.synthetic import generate_compiled_trace, generate_kernel

SEED = 3


@pytest.fixture(scope="module")
def trace():
    return build_benchmark_trace("GAUSSIAN", num_warps=6, scale=0.15)


@pytest.fixture(scope="module")
def runs(trace):
    return {
        design: simulate_design(design, trace, window_size=3,
                                memory_seed=SEED)
        for design in ("baseline", "bow", "bow-wb", "rfc")
    }


class TestDesignsEndToEnd:
    def test_all_complete_all_instructions(self, trace, runs):
        for design, result in runs.items():
            assert result.counters.instructions == trace.total_instructions, design

    def test_memory_images_all_equal(self, trace, runs):
        reference = execute_reference(trace, memory_seed=SEED)
        for design, result in runs.items():
            assert result.memory_image == reference.memory, design

    def test_bypassing_reduces_rf_traffic(self, runs):
        base = runs["baseline"].counters
        bow = runs["bow"].counters
        wb = runs["bow-wb"].counters
        assert bow.rf_reads < base.rf_reads
        assert wb.rf_reads < base.rf_reads
        assert wb.rf_writes < base.rf_writes
        assert bow.rf_writes == base.rf_writes  # write-through

    def test_dynamic_bypass_rate_tracks_static_analysis(self, trace, runs):
        # The timing model's realized read-bypass rate should sit near
        # the trace analysis (it can differ slightly: capacity, timing).
        hits = total = 0
        for warp in trace:
            h, t = read_bypass_counts(warp.instructions, 3)
            hits, total = hits + h, total + t
        static_rate = hits / total
        dynamic_rate = runs["bow"].counters.read_bypass_rate
        assert dynamic_rate == pytest.approx(static_rate, abs=0.12)

    def test_energy_ordering(self, runs):
        model = EnergyModel()
        base = runs["baseline"].counters
        savings = {
            design: model.savings(runs[design].counters, base)
            for design in ("bow", "bow-wb", "rfc")
        }
        assert savings["bow-wb"] > savings["bow"] > 0

    def test_ipc_ordering(self, runs):
        assert runs["bow"].ipc > runs["baseline"].ipc
        assert runs["bow-wb"].ipc > runs["baseline"].ipc


class TestCompilerIntegration:
    def test_compiled_kernel_runs_with_fewer_rf_writes(self):
        spec = get_profile("SRAD").spec
        from dataclasses import replace

        spec = replace(spec, num_warps=4, loop_iterations=4)
        hinted = generate_compiled_trace(spec, window_size=3)

        wb = simulate_design("bow-wb", hinted, window_size=3,
                             memory_seed=SEED)
        wr = simulate_design("bow-wr", hinted, window_size=3,
                             memory_seed=SEED)
        assert wr.counters.rf_writes <= wb.counters.rf_writes
        assert wr.memory_image == wb.memory_image

    def test_transient_fraction_consistent_with_fig7(self):
        kernel = generate_kernel(get_profile("SRAD").spec)
        compiled = compile_kernel(kernel, window_size=3)
        from repro.compiler.writeback import WritebackClass

        distribution = compiled.hint_distribution()
        assert distribution[WritebackClass.OC_ONLY] > 0.3


class TestHalfSizeDesign:
    def test_half_size_stays_correct_and_close(self):
        trace = generate_compiled_trace(
            get_profile("SAD").spec.scaled(0.2), window_size=3
        )
        full = simulate_design("bow-wr", trace, window_size=3,
                               memory_seed=SEED)
        half = simulate_design("bow-wr-half", trace, window_size=3,
                               memory_seed=SEED)
        assert half.memory_image == full.memory_image
        # Paper: ~2% loss; allow a modest band at small scale.
        assert half.ipc >= full.ipc * 0.9
