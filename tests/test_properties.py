"""Property-based tests (hypothesis) for the core invariants.

The headline property is the paper's implicit correctness claim: operand
bypassing is *semantics-preserving*.  For arbitrary generated programs,
every BOW design must produce exactly the reference executor's memory
image, and designs that flush to the RF must match its register image.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.compiler.writeback import (
    WritebackClass,
    classify_linear_writes,
    hint_distribution,
)
from repro.config import BOWConfig, WritebackPolicy
from repro.core.bow_sm import simulate_bow
from repro.core.window import (
    read_bypass_counts,
    write_bypass_opportunity_counts,
    writeback_eliminated_counts,
)
from repro.gpu.reference import execute_reference
from repro.isa import (
    Instruction,
    WritebackHint,
    decode_instruction,
    encode_instruction,
)
from repro.isa.opcodes import OPCODE_TABLE, opcode_by_name
from repro.isa.registers import Predicate, Register
from repro.kernels.trace import KernelTrace, WarpTrace

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_ALU_OPS = ["mov", "add", "sub", "mul", "mad", "and", "or", "xor",
            "shl", "shr", "min", "max", "sel"]
_REG = st.integers(min_value=0, max_value=11)


@st.composite
def alu_instruction(draw):
    name = draw(st.sampled_from(_ALU_OPS))
    opcode = opcode_by_name(name)
    sources = tuple(Register(draw(_REG)) for _ in range(opcode.num_sources))
    return Instruction(
        opcode=opcode,
        dest=Register(draw(_REG)),
        sources=sources,
        immediate=draw(st.integers(min_value=0, max_value=0xFFFF)),
    )


@st.composite
def any_instruction(draw):
    kind = draw(st.integers(min_value=0, max_value=9))
    if kind <= 5:
        return draw(alu_instruction())
    if kind <= 7:
        return Instruction(
            opcode=opcode_by_name("ld.global"),
            dest=Register(draw(_REG)),
            sources=(Register(draw(_REG)),),
        )
    if kind == 8:
        return Instruction(
            opcode=opcode_by_name("st.global"),
            sources=(Register(draw(_REG)), Register(draw(_REG))),
        )
    return Instruction(opcode=opcode_by_name("nop"))


def programs(min_size=1, max_size=40):
    return st.lists(any_instruction(), min_size=min_size, max_size=max_size)


@st.composite
def encodable_instruction(draw):
    opcode = draw(st.sampled_from(sorted(OPCODE_TABLE.values(),
                                         key=lambda o: o.name)))
    sources = tuple(
        Register(draw(st.integers(min_value=0, max_value=254)))
        for _ in range(opcode.num_sources)
    )
    dest = Register(draw(st.integers(0, 255))) if opcode.has_dest else None
    predicate = None
    if draw(st.booleans()):
        predicate = Predicate(draw(st.integers(0, 7)), draw(st.booleans()))
    immediate = draw(st.one_of(st.none(), st.integers(0, 0xFFFF)))
    hint = draw(st.sampled_from(list(WritebackHint)))
    return Instruction(opcode=opcode, dest=dest, sources=sources,
                       immediate=immediate, predicate=predicate, hint=hint)


# ---------------------------------------------------------------------------
# encoder properties
# ---------------------------------------------------------------------------

class TestEncoderProperties:
    @given(encodable_instruction())
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_roundtrip(self, inst):
        back = decode_instruction(encode_instruction(inst))
        assert back.opcode.name == inst.opcode.name
        assert back.sources == inst.sources
        assert back.dest == inst.dest
        assert back.predicate == inst.predicate
        assert back.hint is inst.hint

    @given(encodable_instruction())
    @settings(max_examples=100, deadline=None)
    def test_word_is_64_bits(self, inst):
        assert 0 <= encode_instruction(inst) < (1 << 64)


# ---------------------------------------------------------------------------
# window-analysis properties
# ---------------------------------------------------------------------------

class TestWindowProperties:
    @given(programs(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_read_bypass_bounded(self, program, window):
        bypassed, total = read_bypass_counts(program, window)
        assert 0 <= bypassed <= total

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_read_bypass_monotone_in_window(self, program):
        counts = [read_bypass_counts(program, iw)[0] for iw in (1, 2, 4, 8)]
        assert counts == sorted(counts)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_write_opportunity_monotone_in_window(self, program):
        counts = [
            write_bypass_opportunity_counts(program, iw)[0]
            for iw in (1, 2, 4, 8)
        ]
        assert counts == sorted(counts)

    @given(programs(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_writeback_policy_never_beats_oracle(self, program, window):
        # The hardware-only write-back rule is a subset of the compiler
        # oracle's opportunity.
        wb, wb_total = writeback_eliminated_counts(program, window)
        oracle, oracle_total = write_bypass_opportunity_counts(program, window)
        assert wb_total == oracle_total
        assert wb <= oracle

    @given(programs(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_classification_partitions_writes(self, program, window):
        items = classify_linear_writes(program, window)
        writes = sum(
            1 for inst in program
            if inst.dest is not None and inst.dest.id != 255
        )
        assert len(items) == writes
        distribution = hint_distribution(items)
        if items:
            assert math.isclose(sum(distribution.values()), 1.0)

    @given(programs(min_size=2), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_needs_rf_consistent_with_class(self, program, window):
        for item in classify_linear_writes(program, window):
            if item.writeback in (WritebackClass.RF_ONLY, WritebackClass.BOTH):
                assert item.needs_rf
            else:
                assert not item.needs_rf


# ---------------------------------------------------------------------------
# semantics-preservation properties (the big one)
# ---------------------------------------------------------------------------

def _trace(program):
    return KernelTrace(name="prop", warps=[WarpTrace(0, list(program))])


class TestBypassingPreservesSemantics:
    @given(programs(max_size=25), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_write_through_matches_reference(self, program, window, seed):
        trace = _trace(program)
        reference = execute_reference(trace, memory_seed=seed)
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_THROUGH)
        result = simulate_bow(trace, bow=bow, memory_seed=seed)
        assert result.memory_image == reference.memory
        for key, value in reference.registers.items():
            assert result.register_image[key] == value

    @given(programs(max_size=25), st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_write_back_matches_reference(self, program, window, capacity):
        # Including tiny capacities that force eviction writebacks.
        trace = _trace(program)
        reference = execute_reference(trace, memory_seed=1)
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_BACK,
                        capacity_entries=capacity)
        result = simulate_bow(trace, bow=bow, memory_seed=1)
        assert result.memory_image == reference.memory
        for key, value in reference.registers.items():
            assert result.register_image[key] == value

    @given(programs(max_size=25), st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_compiler_hints_match_reference_memory(self, program, window):
        # Hint the linear program exactly as the compiler would, then
        # check that memory (the observable output) is preserved.
        items = classify_linear_writes(program, window)
        hints = {item.index: item.writeback.hint for item in items}
        hinted = [
            inst.with_hint(hints[i]) if i in hints else inst
            for i, inst in enumerate(program)
        ]
        trace = _trace(hinted)
        reference = execute_reference(trace, memory_seed=2)
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.COMPILER)
        result = simulate_bow(trace, bow=bow, memory_seed=2)
        assert result.memory_image == reference.memory

    @given(programs(max_size=20), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_baseline_matches_reference(self, program, seed):
        from repro.gpu.sm import simulate_baseline

        trace = _trace(program)
        reference = execute_reference(trace, memory_seed=seed)
        result = simulate_baseline(trace, memory_seed=seed)
        assert result.memory_image == reference.memory
        for key, value in reference.registers.items():
            assert result.register_image[key] == value


class TestCounterInvariants:
    @given(programs(max_size=25), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_reads_partition(self, program, window):
        trace = _trace(program)
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_BACK)
        counters = simulate_bow(trace, bow=bow).counters
        assert counters.total_reads == trace.total_reads

    @given(programs(max_size=25), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_writes_partition(self, program, window):
        trace = _trace(program)
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_BACK)
        counters = simulate_bow(trace, bow=bow).counters
        non_sink_writes = sum(
            1 for inst in program
            if inst.dest is not None and inst.dest.id != 255
        )
        assert counters.total_writes == non_sink_writes
