"""Tests for 32-lane active masks."""

import pytest

from repro.errors import SimulationError
from repro.simt.mask import FULL_MASK, WARP_WIDTH, ActiveMask


class TestConstruction:
    def test_full_and_none(self):
        assert FULL_MASK.count == WARP_WIDTH
        assert FULL_MASK.is_full
        assert ActiveMask.none().count == 0
        assert not ActiveMask.none()

    def test_from_lanes(self):
        mask = ActiveMask.from_lanes([0, 5, 31])
        assert list(mask.lanes()) == [0, 5, 31]
        assert 5 in mask
        assert 6 not in mask

    def test_from_lanes_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            ActiveMask.from_lanes([32])

    def test_from_bools(self):
        flags = [False] * WARP_WIDTH
        flags[3] = True
        assert list(ActiveMask.from_bools(flags).lanes()) == [3]

    def test_from_bools_length_checked(self):
        with pytest.raises(SimulationError):
            ActiveMask.from_bools([True])

    def test_bits_bounds(self):
        with pytest.raises(SimulationError):
            ActiveMask(1 << 32)
        with pytest.raises(SimulationError):
            ActiveMask(-1)


class TestAlgebra:
    def test_and_or_invert(self):
        a = ActiveMask.from_lanes([0, 1, 2])
        b = ActiveMask.from_lanes([1, 2, 3])
        assert list((a & b).lanes()) == [1, 2]
        assert list((a | b).lanes()) == [0, 1, 2, 3]
        assert (~a).count == WARP_WIDTH - 3

    def test_minus(self):
        a = ActiveMask.from_lanes([0, 1, 2])
        b = ActiveMask.from_lanes([1])
        assert list(a.minus(b).lanes()) == [0, 2]

    def test_partition_covers_and_is_disjoint(self):
        mask = ActiveMask.from_lanes([0, 1, 4, 9])
        taken, fall = mask.partition(ActiveMask.from_lanes([1, 9, 20]))
        assert (taken | fall) == mask
        assert not (taken & fall)
        assert list(taken.lanes()) == [1, 9]

    def test_utilization(self):
        assert ActiveMask.from_lanes(range(8)).utilization() == 0.25
        assert FULL_MASK.utilization() == 1.0
