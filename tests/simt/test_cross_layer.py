"""Cross-layer consistency: the lane level grounds the scalar model.

The scalar timing engine treats a warp-register as one value; the lane
executor holds 32.  The contract between them: lane 0's launch values
equal the scalar model's, so for divergence-free ALU programs the
scalar reference's register image is exactly the lane-0 projection of
the lane-wise state.
"""

import pytest

from repro.gpu.reference import execute_reference
from repro.gpu.regfile import BankedRegisterFile
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.simt.lanes import LaneState, execute_masked_trace
from repro.simt.mask import FULL_MASK
from repro.simt.stack import MaskedInstruction

ALU_PROGRAM = """
    mov.u32 $r1, 0x7
    add.u32 $r2, $r1, $r9
    mul.u32 $r3, $r2, $r1
    xor.u32 $r4, $r3, $r9
    mad.u32 $r5, $r4, $r1, $r2
    shl.u32 $r6, $r5, 0x2
    sub.u32 $r7, $r6, $r3
"""


def masked(program, warp_id=0):
    return [MaskedInstruction(inst, FULL_MASK, "entry") for inst in program]


class TestLaunchStateContract:
    def test_lane_zero_matches_scalar_initial_value(self):
        state = LaneState(warp_id=3)
        for reg in (0, 1, 7, 42):
            assert state.lane_view(reg, lane=0) == \
                BankedRegisterFile._initial_value(3, reg)

    def test_other_lanes_differ(self):
        state = LaneState(warp_id=0)
        values = state.reg(5)
        assert int(values[1]) != int(values[0])


class TestLaneZeroProjection:
    @pytest.mark.parametrize("warp_id", [0, 2, 9])
    def test_alu_program_projects_to_scalar_reference(self, warp_id):
        program = parse_program(ALU_PROGRAM)
        trace = KernelTrace(name="p", warps=[WarpTrace(warp_id, program)])
        reference = execute_reference(trace)
        lanes = execute_masked_trace(masked(program, warp_id),
                                     warp_id=warp_id)
        for (w, reg), value in reference.registers.items():
            assert w == warp_id
            assert lanes.state.lane_view(reg, lane=0) == value, f"$r{reg}"

    def test_every_lane_is_internally_consistent(self):
        # Each lane computes the same dataflow over its own inputs:
        # recompute lane 5's expected values by hand from its launch
        # state and compare.
        program = parse_program("""
            add.u32 $r2, $r1, $r9
            mul.u32 $r3, $r2, $r1
        """)
        lanes = execute_masked_trace(masked(program))
        state = LaneState(warp_id=0)
        r1 = state.lane_view(1, lane=5)
        r9 = state.lane_view(9, lane=5)
        r2 = (r1 + r9) & 0xFFFFFFFF
        r3 = (r2 * r1) & 0xFFFFFFFF
        assert lanes.state.lane_view(2, lane=5) == r2
        assert lanes.state.lane_view(3, lane=5) == r3
