"""Tests for immediate post-dominator computation."""

import pytest

from repro.errors import CompilerError
from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG
from repro.simt.dominators import immediate_post_dominators


def block(label, edges=()):
    return BasicBlock(label, parse_program("nop"),
                      [Edge(*e) if isinstance(e, tuple) else Edge(e)
                       for e in edges])


def diamond():
    return KernelCFG("diamond", [
        block("a", [("b", 0.5), ("c", 0.5)]),
        block("b", ["d"]),
        block("c", ["d"]),
        block("d"),
    ], entry="a")


class TestStructures:
    def test_diamond_reconverges_at_join(self):
        ipdom = immediate_post_dominators(diamond())
        assert ipdom["a"] == "d"
        assert ipdom["b"] == "d"
        assert ipdom["c"] == "d"
        assert ipdom["d"] is None

    def test_chain(self):
        cfg = KernelCFG("chain", [
            block("a", ["b"]), block("b", ["c"]), block("c"),
        ], entry="a")
        ipdom = immediate_post_dominators(cfg)
        assert ipdom["a"] == "b"
        assert ipdom["b"] == "c"
        assert ipdom["c"] is None

    def test_loop(self):
        cfg = KernelCFG("loop", [
            block("entry", ["body"]),
            block("body", [("body", 0.8), ("exit", 0.2)]),
            block("exit"),
        ], entry="entry")
        ipdom = immediate_post_dominators(cfg)
        assert ipdom["body"] == "exit"
        assert ipdom["entry"] == "body"

    def test_nested_diamond(self):
        cfg = KernelCFG("nested", [
            block("a", [("b", 0.5), ("e", 0.5)]),
            block("b", [("c", 0.5), ("d", 0.5)]),
            block("c", ["join_inner"]),
            block("d", ["join_inner"]),
            block("join_inner", ["f"]),
            block("e", ["f"]),
            block("f"),
        ], entry="a")
        ipdom = immediate_post_dominators(cfg)
        assert ipdom["b"] == "join_inner"
        assert ipdom["a"] == "f"

    def test_branch_to_distinct_exits(self):
        cfg = KernelCFG("exits", [
            block("a", [("b", 0.5), ("c", 0.5)]),
            block("b"),
            block("c"),
        ], entry="a")
        ipdom = immediate_post_dominators(cfg)
        # Paths only meet at the virtual exit: no real reconvergence.
        assert ipdom["a"] is None

    def test_block_unable_to_reach_exit_rejected(self):
        cfg = KernelCFG("spin", [
            block("a", ["b"]),
            block("b", [("b", 1.0)]),  # infinite self-loop, no exit
        ], entry="a")
        with pytest.raises(CompilerError):
            immediate_post_dominators(cfg)

    def test_reserved_label_rejected(self):
        cfg = KernelCFG("bad", [block("__exit__")], entry="__exit__")
        with pytest.raises(CompilerError):
            immediate_post_dominators(cfg)


class TestOnGeneratedKernels:
    def test_every_benchmark_kernel_has_ipdoms(self):
        from repro.kernels.suites import benchmark_names, get_profile
        from repro.kernels.synthetic import generate_kernel

        for name in list(benchmark_names())[:5]:
            cfg = generate_kernel(get_profile(name).spec)
            ipdom = immediate_post_dominators(cfg)
            assert set(ipdom) == set(cfg.blocks)
