"""Tests for lane-wise execution and predication."""

import numpy as np

from repro.isa import parse_program
from repro.simt.lanes import LaneState, execute_masked_trace
from repro.simt.mask import FULL_MASK, WARP_WIDTH, ActiveMask
from repro.simt.stack import MaskedInstruction, expand_masked_trace


def masked(asm, mask=FULL_MASK):
    return [MaskedInstruction(inst, mask, "entry")
            for inst in parse_program(asm)]


class TestLaneState:
    def test_launch_values_differ_per_lane(self):
        state = LaneState(warp_id=0)
        values = state.reg(1)
        assert len(set(int(v) for v in values)) == WARP_WIDTH

    def test_launch_values_deterministic(self):
        assert np.array_equal(LaneState(2).reg(3), LaneState(2).reg(3))

    def test_masked_write(self):
        state = LaneState()
        before = state.reg(1).copy()
        state.write_reg(1, np.zeros(WARP_WIDTH, dtype=np.uint32),
                        ActiveMask.from_lanes([0, 2]))
        after = state.reg(1)
        assert after[0] == 0 and after[2] == 0
        assert after[1] == before[1]


class TestExecution:
    def test_alu_applies_to_all_active_lanes(self):
        result = execute_masked_trace(masked("""
            mov.u32 $r1, 0x7
            add.u32 $r2, $r1, $r1
        """))
        values = result.state.reg(2)
        assert all(int(v) == 14 for v in values)

    def test_inactive_lanes_untouched(self):
        half = ActiveMask.from_lanes(range(16))
        result = execute_masked_trace(masked("mov.u32 $r1, 0x5", half))
        values = result.state.reg(1)
        assert all(int(values[lane]) == 5 for lane in range(16))
        assert all(int(values[lane]) != 5 for lane in range(16, 32))

    def test_mad_semantics_vectorized(self):
        result = execute_masked_trace(masked("""
            mov.u32 $r1, 0x3
            mov.u32 $r2, 0x4
            mov.u32 $r3, 0x5
            mad.u32 $r4, $r1, $r2, $r3
        """))
        assert all(int(v) == 17 for v in result.state.reg(4))

    def test_lane_semantics_match_scalar_table(self):
        # The vectorized ops agree with the scalar opcode semantics.
        from repro.isa.opcodes import opcode_by_name
        from repro.simt.lanes import _vector_op

        rng = np.random.RandomState(7)
        a = rng.randint(0, 2**32, WARP_WIDTH, dtype=np.uint64).astype(np.uint32)
        b = rng.randint(1, 2**32, WARP_WIDTH, dtype=np.uint64).astype(np.uint32)
        c = rng.randint(0, 2**32, WARP_WIDTH, dtype=np.uint64).astype(np.uint32)
        for name in ("add", "sub", "mul", "mad", "and", "or", "xor",
                     "shl", "shr", "min", "max", "set.ne", "set.lt", "sel"):
            scalar = opcode_by_name(name).semantic
            vector = _vector_op(name, a, b, c)
            for lane in range(WARP_WIDTH):
                expected = scalar(int(a[lane]), int(b[lane]), int(c[lane]))
                assert int(vector[lane]) == expected, (name, lane)

    def test_store_then_load_per_lane(self):
        result = execute_masked_trace(masked("""
            mov.u32 $r1, 0x40
            mov.u32 $r2, 0x9
            st.global.u32 [$r1], $r2
            ld.global.u32 $r3, [$r1]
        """))
        assert all(int(v) == 9 for v in result.state.reg(3))


class TestPredication:
    def test_compare_writes_predicate_and_guards(self):
        # Lanes have distinct launch values in $r5; compare against a
        # constant then guard a mov on the predicate.
        result = execute_masked_trace(masked("""
            mov.u32 $r1, 0x1
            set.lt.s32.s32 $p0/$o127, $r5, $r6
            @$p0 mov.u32 $r2, 0x7
        """))
        flags = result.state.pred(0)
        values = result.state.reg(2)
        for lane in range(WARP_WIDTH):
            if flags[lane]:
                assert int(values[lane]) == 7
            else:
                assert int(values[lane]) != 7

    def test_negated_guard(self):
        result = execute_masked_trace(masked("""
            set.lt.s32.s32 $p1/$o127, $r5, $r6
            @!$p1 mov.u32 $r2, 0x7
        """))
        flags = result.state.pred(1)
        values = result.state.reg(2)
        for lane in range(WARP_WIDTH):
            assert (int(values[lane]) == 7) == (not flags[lane])

    def test_fully_predicated_off_skips(self):
        result = execute_masked_trace(masked("""
            set.ne.s32.s32 $p0/$o127, $r5, $r5
            @$p0 mov.u32 $r2, 0x7
        """))
        # $r5 != $r5 is false on every lane.
        assert not result.state.pred(0).any()
        assert all(int(v) != 7 for v in result.state.reg(2))


class TestCoalescing:
    def test_uniform_address_is_one_transaction(self):
        result = execute_masked_trace(masked("""
            mov.u32 $r1, 0x100
            ld.global.u32 $r2, [$r1]
        """))
        assert result.coalescing.histogram == {1: 1}

    def test_scattered_addresses_many_transactions(self):
        # Launch values are scattered: loads through them split badly.
        result = execute_masked_trace(masked("ld.global.u32 $r2, [$r9]"))
        assert result.coalescing.average_transactions() > 4


class TestEndToEnd:
    def test_divergent_kernel_executes(self):
        from repro.kernels.cfg import BasicBlock, Edge, KernelCFG

        cfg = KernelCFG("d", [
            BasicBlock("a", parse_program("mov.u32 $r1, 0x1"),
                       [Edge("b", 0.5), Edge("c", 0.5)]),
            BasicBlock("b", parse_program("add.u32 $r2, $r1, $r1"),
                       [Edge("d")]),
            BasicBlock("c", parse_program("mov.u32 $r2, 0x9"), [Edge("d")]),
            BasicBlock("d", parse_program("exit")),
        ], entry="a")
        trace = expand_masked_trace(cfg, seed=4)
        result = execute_masked_trace(trace)
        values = result.state.reg(2)
        assert set(int(v) for v in values) <= {2, 9}
        assert result.simd_efficiency < 1.0
