"""Tests for memory coalescing analysis."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simt.coalescing import CoalescingStats, transactions_for_addresses
from repro.simt.mask import FULL_MASK, WARP_WIDTH, ActiveMask


def addresses(values):
    return np.array(values, dtype=np.uint32)


class TestTransactions:
    def test_consecutive_words_one_line(self):
        addrs = addresses([lane * 4 for lane in range(WARP_WIDTH)])
        assert transactions_for_addresses(addrs, FULL_MASK, 128) == 1

    def test_strided_access_splits(self):
        addrs = addresses([lane * 128 for lane in range(WARP_WIDTH)])
        assert transactions_for_addresses(addrs, FULL_MASK, 128) == WARP_WIDTH

    def test_same_address_broadcast(self):
        addrs = addresses([0x1000] * WARP_WIDTH)
        assert transactions_for_addresses(addrs, FULL_MASK, 128) == 1

    def test_only_active_lanes_counted(self):
        addrs = addresses([lane * 128 for lane in range(WARP_WIDTH)])
        mask = ActiveMask.from_lanes([0, 1])
        assert transactions_for_addresses(addrs, mask, 128) == 2

    def test_empty_mask_is_zero(self):
        addrs = addresses([0] * WARP_WIDTH)
        assert transactions_for_addresses(addrs, ActiveMask.none(), 128) == 0

    def test_line_size_validated(self):
        addrs = addresses([0] * WARP_WIDTH)
        with pytest.raises(SimulationError):
            transactions_for_addresses(addrs, FULL_MASK, 100)
        with pytest.raises(SimulationError):
            transactions_for_addresses(addrs, FULL_MASK, 0)


class TestStats:
    def test_accumulation(self):
        stats = CoalescingStats()
        stats.record(1)
        stats.record(1)
        stats.record(32)
        assert stats.accesses == 3
        assert stats.total_transactions == 34
        assert stats.average_transactions() == pytest.approx(34 / 3)
        assert stats.fully_coalesced_fraction() == pytest.approx(2 / 3)

    def test_zero_transaction_accesses_ignored(self):
        stats = CoalescingStats()
        stats.record(0)
        assert stats.accesses == 0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            CoalescingStats().record(-1)

    def test_merge(self):
        a = CoalescingStats()
        a.record(1)
        b = CoalescingStats()
        b.record(1)
        b.record(4)
        merged = a.merge(b)
        assert merged.histogram == {1: 2, 4: 1}
        assert a.histogram == {1: 1}  # originals untouched
