"""Tests for the SIMT reconvergence stack."""


from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG
from repro.simt.mask import FULL_MASK
from repro.simt.stack import expand_masked_trace, simd_efficiency


def cfg_from(blocks, entry):
    return KernelCFG("t", blocks, entry=entry)


def block(label, asm, edges=()):
    return BasicBlock(label, parse_program(asm),
                      [Edge(*e) if isinstance(e, tuple) else Edge(e)
                       for e in edges])


def diamond(prob=0.5):
    return cfg_from([
        block("a", "mov.u32 $r1, 0x1", [("b", prob), ("c", 1 - prob)]),
        block("b", "add.u32 $r2, $r1, $r1", ["d"]),
        block("c", "sub.u32 $r2, $r1, $r1", ["d"]),
        block("d", "exit"),
    ], entry="a")


class TestStraightline:
    def test_no_divergence_full_masks(self):
        cfg = cfg_from([
            block("a", "mov.u32 $r1, 0x1\nadd.u32 $r2, $r1, $r1", ["b"]),
            block("b", "exit"),
        ], entry="a")
        trace = expand_masked_trace(cfg)
        assert all(item.mask == FULL_MASK for item in trace)
        assert simd_efficiency(trace) == 1.0

    def test_unconditional_branch_keeps_mask(self):
        cfg = diamond(prob=1.0)
        trace = expand_masked_trace(cfg)
        assert all(item.mask == FULL_MASK for item in trace)
        # Only one side executed.
        blocks = {item.block for item in trace}
        assert "c" not in blocks


class TestDivergence:
    def test_sides_partition_the_warp(self):
        trace = expand_masked_trace(diamond(0.5), seed=3)
        side_b = [i.mask for i in trace if i.block == "b"]
        side_c = [i.mask for i in trace if i.block == "c"]
        assert side_b and side_c
        assert (side_b[0] | side_c[0]) == FULL_MASK
        assert not (side_b[0] & side_c[0])

    def test_reconvergence_restores_mask(self):
        trace = expand_masked_trace(diamond(0.5), seed=3)
        join = [i.mask for i in trace if i.block == "d"]
        assert join and join[0] == FULL_MASK

    def test_each_block_body_emitted_once_per_visit(self):
        trace = expand_masked_trace(diamond(0.5), seed=3)
        # a(1) + b(1) + c(1) + d(1) instructions.
        assert len(trace) == 4

    def test_deterministic_in_seed(self):
        first = expand_masked_trace(diamond(0.5), seed=9)
        second = expand_masked_trace(diamond(0.5), seed=9)
        assert [(i.block, i.mask.bits) for i in first] == \
            [(i.block, i.mask.bits) for i in second]

    def test_warp_id_changes_divergence(self):
        first = expand_masked_trace(diamond(0.5), warp_id=0, seed=1)
        second = expand_masked_trace(diamond(0.5), warp_id=1, seed=1)
        masks_first = [i.mask.bits for i in first]
        masks_second = [i.mask.bits for i in second]
        assert masks_first != masks_second


class TestLoops:
    def _loop(self, prob=0.7):
        return cfg_from([
            block("entry", "mov.u32 $r1, 0x0", ["body"]),
            block("body", "add.u32 $r1, $r1, $r1", [("body", prob),
                                                    ("exit", 1 - prob)]),
            block("exit", "exit"),
        ], entry="entry")

    def test_loop_lanes_drop_out_and_reconverge(self):
        trace = expand_masked_trace(self._loop(), seed=5,
                                    max_instructions=100_000)
        exit_masks = [i.mask for i in trace if i.block == "exit"]
        assert exit_masks[-1] == FULL_MASK  # everyone reaches the exit
        body_masks = [i.mask.count for i in trace if i.block == "body"]
        # Active lane counts in the loop body never grow.
        assert all(b >= a for b, a in zip(body_masks, body_masks[1:]))

    def test_efficiency_below_one_with_divergence(self):
        trace = expand_masked_trace(self._loop(), seed=5)
        assert 0.0 < simd_efficiency(trace) < 1.0

    def test_max_instructions_bound(self):
        trace = expand_masked_trace(self._loop(0.99), seed=1,
                                    max_instructions=50)
        assert len(trace) == 50
