"""Tests for execution-unit dispatch limits and latency table."""

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationError
from repro.gpu.execution import ExecutionUnits, latency_for
from repro.isa import OpClass, parse_program


def inst(text):
    return parse_program(text)[0]


class TestLatency:
    def test_alu_latency(self):
        cfg = GPUConfig()
        assert latency_for(inst("add.u32 $r1, $r2, $r3"), cfg) == cfg.alu_latency

    def test_sfu_latency(self):
        cfg = GPUConfig()
        assert latency_for(inst("rcp.f32 $r1, $r2"), cfg) == cfg.sfu_latency

    def test_control_latency(self):
        cfg = GPUConfig()
        assert latency_for(inst("bra 0x40"), cfg) == cfg.alu_latency + 2

    def test_nop_latency(self):
        assert latency_for(inst("nop"), GPUConfig()) == 1

    def test_memory_rejected(self):
        with pytest.raises(SimulationError):
            latency_for(inst("ld.global.u32 $r1, [$r2]"), GPUConfig())


class TestDispatchLimits:
    def test_alu_width(self):
        cfg = GPUConfig()
        units = ExecutionUnits(cfg)
        units.new_cycle()
        for _ in range(cfg.num_alu_units):
            assert units.can_dispatch(OpClass.ALU)
            units.dispatch(OpClass.ALU)
        assert not units.can_dispatch(OpClass.ALU)

    def test_new_cycle_resets(self):
        units = ExecutionUnits(GPUConfig())
        units.new_cycle()
        units.dispatch(OpClass.SFU)
        assert not units.can_dispatch(OpClass.SFU)
        units.new_cycle()
        assert units.can_dispatch(OpClass.SFU)

    def test_loads_and_stores_share_memory_unit(self):
        units = ExecutionUnits(GPUConfig())
        units.new_cycle()
        units.dispatch(OpClass.MEM_LOAD)
        assert not units.can_dispatch(OpClass.MEM_STORE)

    def test_control_shares_alu_ports(self):
        cfg = GPUConfig()
        units = ExecutionUnits(cfg)
        units.new_cycle()
        for _ in range(cfg.num_alu_units):
            units.dispatch(OpClass.CONTROL)
        assert not units.can_dispatch(OpClass.ALU)

    def test_over_dispatch_raises(self):
        units = ExecutionUnits(GPUConfig())
        units.new_cycle()
        units.dispatch(OpClass.SFU)
        with pytest.raises(SimulationError):
            units.dispatch(OpClass.SFU)

    def test_classes_independent(self):
        units = ExecutionUnits(GPUConfig())
        units.new_cycle()
        units.dispatch(OpClass.MEM_LOAD)
        assert units.can_dispatch(OpClass.ALU)
        assert units.can_dispatch(OpClass.SFU)
