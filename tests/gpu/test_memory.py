"""Tests for the deterministic memory latency/data model."""

import pytest

from repro.config import GPUConfig
from repro.errors import SimulationError
from repro.gpu.memory import CacheMix, MemoryModel
from repro.isa import parse_program


def inst(text):
    return parse_program(text)[0]


class TestLatency:
    def test_deterministic_per_access(self):
        cfg = GPUConfig()
        first = MemoryModel(cfg, seed=3)
        second = MemoryModel(cfg, seed=3)
        load = inst("ld.global.u32 $r1, [$r2]")
        assert first.latency(load, 2, 17) == second.latency(load, 2, 17)

    def test_seed_changes_latency_mix(self):
        cfg = GPUConfig()
        load = inst("ld.global.u32 $r1, [$r2]")
        lat_a = [MemoryModel(cfg, seed=1).latency(load, 0, i) for i in range(50)]
        lat_b = [MemoryModel(cfg, seed=2).latency(load, 0, i) for i in range(50)]
        assert lat_a != lat_b

    def test_global_latencies_from_hierarchy(self):
        cfg = GPUConfig()
        model = MemoryModel(cfg, seed=0)
        load = inst("ld.global.u32 $r1, [$r2]")
        latencies = {model.latency(load, w, i)
                     for w in range(4) for i in range(100)}
        assert latencies <= {cfg.mem_l1_hit_latency, cfg.mem_l2_hit_latency,
                             cfg.mem_global_latency}
        assert len(latencies) >= 2  # the mix actually mixes

    def test_shared_latency_fixed(self):
        cfg = GPUConfig()
        model = MemoryModel(cfg)
        load = inst("ld.shared.u32 $r1, [$r2]")
        assert model.latency(load, 0, 0) == cfg.shared_mem_latency

    def test_non_memory_rejected(self):
        model = MemoryModel(GPUConfig())
        with pytest.raises(SimulationError):
            model.latency(inst("add.u32 $r1, $r2, $r3"), 0, 0)

    def test_mix_validation(self):
        with pytest.raises(SimulationError):
            CacheMix(l1_hit=0.8, l2_hit=0.3)


class TestData:
    def test_store_then_load(self):
        model = MemoryModel(GPUConfig())
        model.store(0x100, 42)
        assert model.load(0x100) == 42

    def test_unwritten_load_deterministic(self):
        first = MemoryModel(GPUConfig())
        second = MemoryModel(GPUConfig())
        assert first.load(0xABC) == second.load(0xABC)

    def test_values_masked(self):
        model = MemoryModel(GPUConfig())
        model.store(0x10, 0x1_2345_6789)
        assert model.load(0x10) == 0x23456789

    def test_image_snapshot(self):
        model = MemoryModel(GPUConfig())
        model.store(1, 2)
        snap = model.image_snapshot()
        model.store(1, 3)
        assert snap == {1: 2}


class TestThreadAddress:
    def test_warps_disjoint(self):
        a = MemoryModel.thread_address(0, 0x1234)
        b = MemoryModel.thread_address(1, 0x1234)
        assert a != b

    def test_no_cross_warp_collisions(self):
        # Warp windows are disjoint: any two warps, any two offsets.
        seen = {}
        for warp in range(4):
            for offset in (0, 0xFFFFF, 0x55555):
                addr = MemoryModel.thread_address(warp, offset)
                assert addr not in seen
                seen[addr] = (warp, offset)

    def test_offset_masked_into_window(self):
        addr = MemoryModel.thread_address(2, 0xFFF_FFFFF)
        assert addr >> 20 == 2
