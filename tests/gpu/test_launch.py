"""Tests for multi-SM kernel launches."""

import pytest

from repro.errors import SimulationError
from repro.gpu.launch import partition_warps, simulate_launch
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace

PROGRAM = """
    mov.u32 $r1, 0x5
    add.u32 $r2, $r1, $r1
    st.global.u32 [$r1], $r2
"""


def launch_trace(num_warps=8):
    return KernelTrace(name="launch", warps=[
        WarpTrace(warp_id=w, instructions=parse_program(PROGRAM))
        for w in range(num_warps)
    ])


class TestPartition:
    def test_blocks_round_robin(self):
        partitioned = partition_warps(launch_trace(8), num_sms=2,
                                      warps_per_block=2)
        assert set(partitioned) == {0, 1}
        assert partitioned[0].num_warps == 4
        assert partitioned[1].num_warps == 4

    def test_block_stays_together(self):
        # Warps 0-3 form block 0 -> SM 0; warps 4-7 block 1 -> SM 1.
        partitioned = partition_warps(launch_trace(8), num_sms=2,
                                      warps_per_block=4)
        assert partitioned[0].num_warps == 4
        assert partitioned[1].num_warps == 4

    def test_warp_ids_renumbered_dense(self):
        partitioned = partition_warps(launch_trace(6), num_sms=3,
                                      warps_per_block=1)
        for sm_trace in partitioned.values():
            ids = [w.warp_id for w in sm_trace]
            assert ids == list(range(len(ids)))

    def test_uneven_split(self):
        partitioned = partition_warps(launch_trace(5), num_sms=2,
                                      warps_per_block=2)
        total = sum(t.num_warps for t in partitioned.values())
        assert total == 5

    def test_validation(self):
        with pytest.raises(SimulationError):
            partition_warps(launch_trace(2), num_sms=0)
        with pytest.raises(SimulationError):
            partition_warps(launch_trace(2), num_sms=1, warps_per_block=0)


class TestLaunch:
    def test_all_instructions_complete(self):
        trace = launch_trace(8)
        result = simulate_launch(trace, num_sms=2)
        assert result.counters.instructions == trace.total_instructions

    def test_finish_is_slowest_sm(self):
        result = simulate_launch(launch_trace(8), num_sms=2)
        slowest = max(r.counters.cycles for r in result.per_sm.values())
        assert result.finish_cycle == slowest

    def test_load_imbalance_balanced(self):
        # Long enough for per-SM memory-latency draws to average out.
        program = parse_program(PROGRAM) * 40
        trace = KernelTrace(name="big", warps=[
            WarpTrace(warp_id=w, instructions=list(program))
            for w in range(8)
        ])
        result = simulate_launch(trace, num_sms=2)
        assert result.load_imbalance() == pytest.approx(1.0, abs=0.25)

    def test_bow_launch_beats_baseline(self):
        # Use enough warps per SM for contention to matter.
        trace = launch_trace(16)
        base = simulate_launch(trace, design="baseline", num_sms=2)
        bow = simulate_launch(trace, design="bow", num_sms=2)
        assert bow.counters.rf_reads < base.counters.rf_reads

    def test_ipc_per_sm(self):
        result = simulate_launch(launch_trace(8), num_sms=4)
        assert result.ipc_per_sm > 0
