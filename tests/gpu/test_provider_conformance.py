"""OperandProvider conformance suite.

Every provider — the baseline OCU pool, the BOW bypassing collectors,
and the RFC comparison point — implements the one protocol the engine
speaks (:class:`repro.gpu.collector.OperandProvider`).  These tests run
the identical scenarios against all three implementations:

* read-request routing (requests target the owning warp's banks, one
  port per entry, slots served in order);
* delivery discipline (unknown tags and out-of-order deliveries are
  simulation errors, never silent corruption);
* capacity round-trip (a full provider rejects issue; dispatch frees
  the slot);
* write routing end-to-end (every design converges to the reference
  executor's architectural state);
* FIFO eviction order under capacity pressure (bow, rfc);
* recorder-emit parity (instruction-lifecycle event counts are a
  property of the trace, not of the provider).

A final hypothesis property pins the protocol itself: a from-scratch
pass-through provider — written against nothing but the protocol
docstring — is cycle-for-cycle identical to the baseline engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BOWConfig, WritebackPolicy, bow_config
from repro.core.boc import BOWCollectors
from repro.core.rfc import RFC_ENTRIES_PER_WARP, RFCCollectors
from repro.errors import SimulationError
from repro.gpu.banks import AccessRequest
from repro.gpu.collector import (
    BaselineCollectorPool,
    InflightInstruction,
    OperandProvider,
    ensure_decoded,
)
from repro.gpu.reference import execute_reference
from repro.gpu.sm import SMEngine
from repro.isa import Instruction, parse_program
from repro.isa.opcodes import opcode_by_name
from repro.isa.registers import Register
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.stats.trace import EventKind, TraceRecorder

PROVIDERS = {
    "baseline": lambda eng: BaselineCollectorPool(
        eng, eng.config.num_operand_collectors),
    "bow": lambda eng: BOWCollectors(eng, bow_config(3)),
    "rfc": lambda eng: RFCCollectors(
        eng, eng.config.num_operand_collectors, RFC_ENTRIES_PER_WARP),
}

ALL = sorted(PROVIDERS)


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


def fresh_provider(name):
    """A provider of ``name``'s family attached to an idle engine."""
    engine = SMEngine(single_warp("nop"),
                      provider_factory=PROVIDERS[name])
    return engine, engine.provider


def make_entry(trace_index, text="add.u32 $r3, $r1, $r2"):
    return InflightInstruction(0, trace_index, parse_program(text)[0],
                               issue_cycle=trace_index)


class TestReadRequestRouting:
    """Issue / read-request path of the protocol."""

    @pytest.mark.parametrize("name", ALL)
    def test_requests_route_to_register_banks(self, name):
        engine, provider = fresh_provider(name)
        entry = make_entry(0)
        provider.insert(entry)
        requests = provider.read_requests(0)
        assert len(requests) == 1  # one port per entry slot
        request = requests[0]
        assert isinstance(request, AccessRequest)
        assert request.warp_id == 0
        assert request.register_id == 1  # first pending source, in order
        assert request.bank == engine.config.bank_of(0, request.register_id)

    @pytest.mark.parametrize("name", ALL)
    def test_slots_served_in_order_then_ready(self, name):
        engine, provider = fresh_provider(name)
        entry = make_entry(0)
        provider.insert(entry)
        served = []
        for _ in range(8):
            requests = provider.read_requests(0)
            if not requests:
                break
            provider.deliver(requests[0].tag, 40 + requests[0].register_id)
            served.append(requests[0].register_id)
        assert served == [1, 2]
        assert entry in provider.ready_entries()
        assert entry.operand_values == {0: 41, 1: 42}

    @pytest.mark.parametrize("name", ALL)
    def test_unknown_tag_rejected(self, name):
        _, provider = fresh_provider(name)
        provider.insert(make_entry(0))
        with pytest.raises(SimulationError):
            provider.deliver(((0, 99), 0), 7)

    @pytest.mark.parametrize("name", ALL)
    def test_out_of_order_delivery_rejected(self, name):
        _, provider = fresh_provider(name)
        entry = make_entry(0)
        provider.insert(entry)
        tag = (entry.key, 1)  # slot 1 before slot 0
        with pytest.raises(SimulationError):
            provider.deliver(tag, 7)


class TestCapacity:
    """can_accept / insert / on_dispatch round-trip."""

    @pytest.mark.parametrize("name", ALL)
    def test_dispatch_frees_a_slot(self, name):
        _, provider = fresh_provider(name)
        entries = []
        while provider.can_accept(0) and len(entries) < 64:
            entry = make_entry(len(entries))
            provider.insert(entry)
            entries.append(entry)
        assert not provider.can_accept(0)  # capacity is finite
        first = entries[0]
        for _ in range(8):
            requests = [r for r in provider.read_requests(0)
                        if r.tag[0] == first.key]
            if not requests:
                break
            provider.deliver(requests[0].tag, 7)
        assert first in provider.ready_entries()
        provider.on_dispatch(first)
        assert provider.can_accept(0)


class TestWriteRouting:
    """on_complete / drain: every design converges to reference state."""

    PROGRAM = """
        mov.u32 $r1, 0x5
        add.u32 $r2, $r1, $r1
        mul.u32 $r3, $r2, $r1
        st.global.u32 [$r4], $r3
        add.u32 $r1, $r3, $r2
    """

    @pytest.mark.parametrize("name", ALL)
    def test_final_state_matches_reference(self, name):
        trace = single_warp(self.PROGRAM)
        result = SMEngine(trace, provider_factory=PROVIDERS[name],
                          memory_seed=3).run()
        reference = execute_reference(trace, memory_seed=3)
        assert result.memory_image == reference.memory, name
        assert result.register_image == reference.registers, name


class TestFifoEviction:
    """Capacity pressure evicts the oldest resident value first."""

    PROGRAM = """
        mov.u32 $r1, 0x1
        mov.u32 $r2, 0x2
        mov.u32 $r3, 0x3
        mov.u32 $r4, 0x4
    """

    def _capacity_two(self, name):
        if name == "bow":
            bow = BOWConfig(window_size=6, capacity_entries=2,
                            writeback=WritebackPolicy.WRITE_BACK)
            return lambda eng: BOWCollectors(eng, bow)
        return lambda eng: RFCCollectors(
            eng, eng.config.num_operand_collectors, 2)

    @pytest.mark.parametrize("name", ["bow", "rfc"])
    def test_eviction_order_is_fifo(self, name):
        recorder = TraceRecorder()
        SMEngine(single_warp(self.PROGRAM),
                 provider_factory=self._capacity_two(name),
                 recorder=recorder).run()
        evicted = [event.register for event in recorder.events
                   if event.kind is EventKind.BOC_EVICT
                   and event.reason == "capacity"]
        # r1 and r2 fill the two entries; r3 evicts r1, r4 evicts r2.
        assert evicted == [1, 2], name


class TestRecorderParity:
    """Instruction-lifecycle emits depend on the trace, not the provider."""

    PROGRAM = """
        mov.u32 $r1, 0x2
        add.u32 $r2, $r1, $r1
        ld.global.u32 $r3, [$r2]
        add.u32 $r4, $r3, $r1
        st.global.u32 [$r2], $r4
    """

    def test_lifecycle_counts_equal_across_providers(self):
        counts = {}
        for name in ALL:
            recorder = TraceRecorder()
            SMEngine(single_warp(self.PROGRAM),
                     provider_factory=PROVIDERS[name],
                     recorder=recorder).run()
            counts[name] = {
                kind: recorder.count(kind)
                for kind in (EventKind.ISSUE, EventKind.DISPATCH,
                             EventKind.COMMIT)
            }
        instructions = len(parse_program(self.PROGRAM))
        for name, per_kind in counts.items():
            assert per_kind[EventKind.ISSUE] == instructions, name
            assert per_kind[EventKind.DISPATCH] == instructions, name
            assert per_kind[EventKind.COMMIT] == instructions, name


# ---------------------------------------------------------------------------
# pass-through provider: the protocol docstring, implemented from scratch
# ---------------------------------------------------------------------------

class PassThroughProvider(OperandProvider):
    """A minimal conforming provider: every operand from the RF.

    Deliberately written from the protocol description alone (no code
    shared with :class:`BaselineCollectorPool`): if the protocol is
    complete, this must reproduce the baseline engine exactly.
    """

    def __init__(self, engine, num_units):
        self.engine = engine
        self.num_units = num_units
        self.entries = []

    def can_accept(self, warp_id):
        return len(self.entries) < self.num_units

    def insert(self, entry):
        dec = ensure_decoded(entry, self.engine)
        entry.pending_slots = list(range(dec.num_sources))
        self.entries.append(entry)

    def read_requests(self, cycle):
        requests = []
        for entry in self.entries:
            if entry.pending_slots:
                slot = entry.pending_slots[0]
                requests.append(AccessRequest(
                    bank=entry.dec.source_banks[slot],
                    warp_id=entry.warp_id,
                    register_id=entry.dec.source_ids[slot],
                    tag=(entry.key, slot),
                    age=entry.issue_cycle,
                ))
        return requests

    def deliver(self, tag, value):
        key, slot = tag
        for entry in self.entries:
            if entry.key == key and entry.pending_slots \
                    and entry.pending_slots[0] == slot:
                entry.pending_slots.pop(0)
                entry.operand_values[slot] = value
                return
        raise SimulationError(f"unexpected operand delivery {tag!r}")

    def ready_entries(self):
        return [e for e in self.entries if not e.pending_slots]

    def on_dispatch(self, entry):
        self.entries.remove(entry)

    def on_complete(self, entry, value):
        if value is None or entry.dec.rf_dest_id is None:
            self.engine.release_scoreboard(entry)
            return
        self.engine.enqueue_rf_write(entry, value, release_on_grant=True)


_ALU_OPS = ["mov", "add", "sub", "mul", "and", "or", "xor", "min", "max"]
_REG = st.integers(min_value=0, max_value=9)


@st.composite
def _instruction(draw):
    kind = draw(st.integers(min_value=0, max_value=9))
    if kind <= 6:
        opcode = opcode_by_name(draw(st.sampled_from(_ALU_OPS)))
        sources = tuple(
            Register(draw(_REG)) for _ in range(opcode.num_sources))
        return Instruction(
            opcode=opcode, dest=Register(draw(_REG)), sources=sources,
            immediate=draw(st.integers(min_value=0, max_value=0xFFFF)))
    if kind <= 7:
        return Instruction(opcode=opcode_by_name("ld.global"),
                           dest=Register(draw(_REG)),
                           sources=(Register(draw(_REG)),))
    if kind == 8:
        return Instruction(opcode=opcode_by_name("st.global"),
                           sources=(Register(draw(_REG)),
                                    Register(draw(_REG))))
    return Instruction(opcode=opcode_by_name("nop"))


@st.composite
def _traces(draw):
    num_warps = draw(st.integers(min_value=1, max_value=2))
    warps = []
    for warp_id in range(num_warps):
        instructions = draw(st.lists(_instruction(), min_size=1,
                                     max_size=24))
        warps.append(WarpTrace(warp_id=warp_id, instructions=instructions))
    return KernelTrace(name="prop", warps=warps)


class TestPassThroughEqualsBaseline:
    @given(_traces())
    @settings(max_examples=40, deadline=None)
    def test_cycle_identical_to_baseline(self, trace):
        baseline = SMEngine(trace, provider_factory=PROVIDERS["baseline"],
                            memory_seed=5).run()
        passthrough = SMEngine(
            trace,
            provider_factory=lambda eng: PassThroughProvider(
                eng, eng.config.num_operand_collectors),
            memory_seed=5,
        ).run()
        assert passthrough.counters.cycles == baseline.counters.cycles
        assert passthrough.counters.as_dict() == baseline.counters.as_dict()
        assert passthrough.register_image == baseline.register_image
        assert passthrough.memory_image == baseline.memory_image
