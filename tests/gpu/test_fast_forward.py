"""Fast-forward parity: the event-horizon loop is an optimization only.

The engine contract (DESIGN.md §3): a run with ``fast_forward=True``
must be bit-identical to the per-cycle reference path — same counters
(``fast_forwarded_cycles`` aside: it *measures* the optimization, so
it is the one field allowed to differ), same register and memory
images, same commit streams, same recorder rollups, and the same
timeline sampling grid.  These tests pin that contract for every
registered design, with a hypothesis sweep over generated kernels on
top of the fixed seeds.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bow_sm import simulate_design
from repro.core.designs import design_names, get_design
from repro.fuzz.generator import FuzzConfig, generate_case
from repro.gpu.sm import SMEngine
from repro.stats.timeline import Timeline
from repro.stats.trace import EventKind, TraceRecorder

FUZZ = FuzzConfig(max_trace_instructions=120, max_warps=4)
WINDOW = 3
MEMORY_SEED = 11

ALL_DESIGNS = design_names()


def trace_for(design: str, seed: int):
    case = generate_case(seed, FUZZ)
    return case.hinted if get_design(design).hinted else case.plain


def run_design(design, trace, fast_forward, recorder=None):
    return simulate_design(
        design, trace, window_size=WINDOW, memory_seed=MEMORY_SEED,
        recorder=recorder, fast_forward=fast_forward,
    )


def comparable_counters(result) -> dict:
    counters = dataclasses.asdict(result.counters)
    counters.pop("fast_forwarded_cycles")
    return counters


def assert_identical(fast, slow) -> None:
    assert comparable_counters(fast) == comparable_counters(slow)
    assert fast.register_image == slow.register_image
    assert fast.memory_image == slow.memory_image
    # The reference path never jumps; ``cycles`` already matched above.
    assert slow.counters.fast_forwarded_cycles == 0


class TestSimulationResultParity:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_results_identical(self, design):
        trace = trace_for(design, seed=5)
        fast = run_design(design, trace, fast_forward=True)
        slow = run_design(design, trace, fast_forward=False)
        assert_identical(fast, slow)

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_fast_forward_actually_jumps(self, design):
        # Generated kernels carry global loads (hundreds of idle
        # cycles), so a run that never jumps means the horizon logic
        # lost coverage, even though results would still be correct.
        trace = trace_for(design, seed=5)
        fast = run_design(design, trace, fast_forward=True)
        assert fast.counters.fast_forwarded_cycles > 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           design=st.sampled_from(ALL_DESIGNS))
    def test_parity_over_generated_kernels(self, seed, design):
        trace = trace_for(design, seed)
        fast = run_design(design, trace, fast_forward=True)
        slow = run_design(design, trace, fast_forward=False)
        assert_identical(fast, slow)


class TestRecorderParity:
    """Rollups and commit streams match; only coalescing differs.

    The fast path emits one ``count=span`` stall event where the
    per-cycle path emits ``span`` single events, so raw event totals
    legitimately differ — every aggregate view must not.
    """

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_rollups_identical(self, design):
        trace = trace_for(design, seed=9)
        fast_rec = TraceRecorder(capacity=1 << 20)
        slow_rec = TraceRecorder(capacity=1 << 20)
        fast = run_design(design, trace, True, recorder=fast_rec)
        slow = run_design(design, trace, False, recorder=slow_rec)
        assert_identical(fast, slow)
        assert fast_rec.dropped == 0 and slow_rec.dropped == 0
        assert fast_rec.counts == slow_rec.counts
        assert fast_rec.reason_counts == slow_rec.reason_counts
        assert fast_rec.warp_counts == slow_rec.warp_counts
        assert fast_rec.stage_counts() == slow_rec.stage_counts()
        assert fast_rec.warp_summary() == slow_rec.warp_summary()
        assert fast_rec.commits() == slow_rec.commits()

    def test_coalesced_stall_events_carry_the_span(self):
        trace = trace_for("bow", seed=9)
        recorder = TraceRecorder(capacity=1 << 20)
        result = run_design("bow", trace, True, recorder=recorder)
        spans = [event.count for event in recorder.events
                 if event.kind is EventKind.ISSUE_STALL and event.count > 1]
        assert result.counters.fast_forwarded_cycles > 0
        assert spans, "jumped spans must surface as count>1 stall events"


class TestTimelineParity:
    """Regression for the jumped-grid fix in ``Timeline.advance``.

    A jump over a sampling-grid point must emit the owed samples
    (carry-forward counters) instead of leaving holes in the grid.
    """

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_sampling_grids_identical(self, design):
        spec = get_design(design)
        trace = trace_for(design, seed=13)

        def sample(fast_forward):
            timeline = Timeline(interval=64)
            engine = SMEngine(
                trace,
                provider_factory=lambda eng: spec.provider(eng, WINDOW),
                memory_seed=MEMORY_SEED,
                timeline=timeline,
                fast_forward=fast_forward,
            )
            engine.run()
            return timeline.samples

        # (interval 64 does not divide the memory latencies, so grid
        # points land mid-span and the owed-sample replay is exercised.)
        fast = sample(True)
        slow = sample(False)
        assert fast == slow

    def test_no_grid_holes_across_jumps(self):
        spec = get_design("bow")
        trace = trace_for("bow", seed=13)
        timeline = Timeline(interval=32)
        engine = SMEngine(
            trace,
            provider_factory=lambda eng: spec.provider(eng, WINDOW),
            memory_seed=MEMORY_SEED,
            timeline=timeline,
            fast_forward=True,
        )
        result = engine.run()
        assert result.counters.fast_forwarded_cycles > 0
        cycles = [sample.cycle for sample in timeline.samples]
        grid, tail = cycles[:-1], cycles[-1]
        # Every on-grid point up to the end of the run is present...
        assert grid == list(range(32, grid[-1] + 1, 32))
        # ...and the final (off-grid) sample closes out the series.
        assert tail == result.counters.cycles
