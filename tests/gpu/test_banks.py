"""Tests for single-ported bank arbitration."""

import pytest

from repro.errors import SimulationError
from repro.gpu.banks import AccessRequest, BankArbiter


def read(bank, tag, age=0):
    return AccessRequest(bank=bank, warp_id=0, register_id=0, tag=tag, age=age)


class TestArbitration:
    def test_distinct_banks_all_granted(self):
        arbiter = BankArbiter(4)
        result = arbiter.arbitrate([read(0, "a"), read(1, "b")], [])
        assert {r.tag for r in result.granted_reads} == {"a", "b"}
        assert result.conflicts == 0

    def test_same_bank_serializes(self):
        arbiter = BankArbiter(4)
        result = arbiter.arbitrate([read(2, "a", age=5), read(2, "b", age=1)], [])
        assert [r.tag for r in result.granted_reads] == ["b"]  # oldest wins
        assert result.conflicts == 1

    def test_write_priority_over_read(self):
        arbiter = BankArbiter(4)
        result = arbiter.arbitrate(
            [read(1, "r", age=0)],
            [read(1, "w", age=9)],
        )
        assert [r.tag for r in result.granted_writes] == ["w"]
        assert not result.granted_reads
        assert result.conflicts == 1

    def test_oldest_write_wins(self):
        arbiter = BankArbiter(2)
        result = arbiter.arbitrate([], [read(0, "w1", 3), read(0, "w2", 1)])
        assert [r.tag for r in result.granted_writes] == ["w2"]

    def test_at_most_one_grant_per_bank(self):
        arbiter = BankArbiter(2)
        requests = [read(0, f"t{i}") for i in range(5)]
        result = arbiter.arbitrate(requests, [])
        assert len(result.granted_reads) == 1
        assert result.conflicts == 4

    def test_conflict_count_mixed(self):
        arbiter = BankArbiter(2)
        result = arbiter.arbitrate(
            [read(0, "r1"), read(0, "r2"), read(1, "r3")],
            [read(0, "w1")],
        )
        # Bank 0: write granted, two reads denied. Bank 1: read granted.
        assert result.conflicts == 2
        assert len(result.granted_reads) == 1
        assert len(result.granted_writes) == 1

    def test_bank_out_of_range_rejected(self):
        arbiter = BankArbiter(2)
        with pytest.raises(SimulationError):
            arbiter.arbitrate([read(2, "x")], [])

    def test_empty_requests(self):
        result = BankArbiter(2).arbitrate([], [])
        assert not result.granted_reads
        assert not result.granted_writes
        assert result.conflicts == 0

    def test_invalid_bank_count(self):
        with pytest.raises(SimulationError):
            BankArbiter(0)
