"""Golden cycle-accurate timing pins for the pipeline.

Tiny programs whose exact cycle counts are pinned: any change to issue,
collection, execution, or writeback timing fails here first, with the
arithmetic below explaining which stage the cycles come from.  These
complement the statistical assertions elsewhere — a regression can
shift IPC by 1% and pass every band; it cannot change these integers.

Machine defaults that the arithmetic uses: ALU latency 4, SFU 16,
rf_read_latency 3, dual-issue GTO, write-priority banks.
"""


from repro.core.bow_sm import simulate_design
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def cycles(text, design="baseline", window_size=3):
    trace = KernelTrace(name="t", warps=[
        WarpTrace(0, parse_program(text))
    ])
    result = simulate_design(design, trace, window_size=window_size,
                             memory_seed=0)
    return result.counters.cycles


class TestGoldenTimings:
    def test_nop(self):
        # issue(1) + dispatch(1) + exec(1); no writeback.
        assert cycles("nop") == 3

    def test_single_mov_immediate(self):
        # issue(1) + dispatch(1) + ALU(4) = complete at 6; the RF write
        # drains in the same accounting window.
        assert cycles("mov.u32 $r1, 0x1") == 6

    def test_dual_issue_hides_second_independent_mov(self):
        # Both movs issue in cycle 1 (dual-issue): same finish time.
        assert cycles("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
        """) == 6

    def test_single_two_source_add(self):
        # Two RF reads serialize on the collector port: each takes
        # grant(1) + read pipeline(3); then ALU(4) + writeback.
        assert cycles("add.u32 $r1, $r2, $r3") == 12

    def test_dependent_pair_baseline(self):
        # The consumer waits for the producer's RF write *grant*, then
        # pays the full collection pipeline for $r1.
        assert cycles("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """) == 17

    def test_dependent_pair_bow_forwards(self):
        # BOW: the producer releases at completion (no write-grant wait)
        # and the consumer's operands forward at issue (no collection
        # pipeline): 6 cycles saved over the baseline's 17.
        assert cycles("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """, design="bow") == 11

    def test_sfu_latency_dominates(self):
        # One operand collection (4) + SFU(16) + completion margin.
        assert cycles("rcp.f32 $r1, $r2") == 21

    def test_window_size_does_not_change_single_chain(self):
        text = """
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """
        assert cycles(text, "bow", window_size=2) == \
            cycles(text, "bow", window_size=7)

    def test_deterministic(self):
        text = "add.u32 $r1, $r2, $r3"
        assert cycles(text) == cycles(text)
