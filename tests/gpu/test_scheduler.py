"""Tests for GTO and LRR warp schedulers."""

import pytest

from repro.config import SchedulerPolicy
from repro.errors import SimulationError
from repro.gpu.scheduler import GTOScheduler, LRRScheduler, make_scheduler


class TestGTO:
    def test_initial_order_is_oldest_first(self):
        sched = GTOScheduler(0, [4, 0, 8])
        assert sched.candidate_order() == [0, 4, 8]

    def test_greedy_warp_promoted(self):
        sched = GTOScheduler(0, [0, 4, 8])
        sched.note_issue(4)
        assert sched.candidate_order()[0] == 4

    def test_stall_demotes_greedy(self):
        sched = GTOScheduler(0, [0, 4, 8])
        sched.note_issue(8)
        sched.note_stall(8)
        assert sched.candidate_order() == [0, 4, 8]

    def test_stall_of_non_greedy_ignored(self):
        sched = GTOScheduler(0, [0, 4])
        sched.note_issue(4)
        sched.note_stall(0)
        assert sched.candidate_order()[0] == 4


class TestLRR:
    def test_rotates_each_cycle(self):
        sched = LRRScheduler(0, [0, 1, 2])
        assert sched.candidate_order() == [0, 1, 2]
        assert sched.candidate_order() == [1, 2, 0]
        assert sched.candidate_order() == [2, 0, 1]
        assert sched.candidate_order() == [0, 1, 2]

    def test_order_is_permutation(self):
        sched = LRRScheduler(0, [3, 1, 7])
        for _ in range(5):
            assert sorted(sched.candidate_order()) == [1, 3, 7]


class TestTwoLevel:
    def _sched(self, warps=6, active=2):
        from repro.gpu.scheduler import TwoLevelScheduler

        return TwoLevelScheduler(0, list(range(warps)), active_size=active)

    def test_only_active_set_considered(self):
        sched = self._sched()
        assert sched.candidate_order() == [0, 1]

    def test_issue_promotes_to_front(self):
        sched = self._sched()
        sched.note_issue(1)
        assert sched.candidate_order()[0] == 1

    def test_repeated_stall_swaps_out(self):
        sched = self._sched()
        sched.note_stall(0)
        sched.note_stall(0)
        order = sched.candidate_order()
        assert 0 not in order
        assert 2 in order  # oldest pending warp promoted

    def test_single_stall_keeps_warp(self):
        sched = self._sched()
        sched.note_stall(0)
        assert 0 in sched.candidate_order()

    def test_issue_resets_stall_counter(self):
        sched = self._sched()
        sched.note_stall(0)
        sched.note_issue(0)
        sched.note_stall(0)
        assert 0 in sched.candidate_order()

    def test_no_pending_means_no_swap(self):
        sched = self._sched(warps=2, active=2)
        sched.note_stall(0)
        sched.note_stall(0)
        assert 0 in sched.candidate_order()

    def test_active_size_validated(self):
        with pytest.raises(SimulationError):
            self._sched(active=0)

    def test_engine_runs_with_two_level(self):
        from repro.config import GPUConfig
        from repro.gpu.sm import simulate_baseline
        from repro.isa import parse_program
        from repro.kernels.trace import KernelTrace, WarpTrace

        trace = KernelTrace(name="t", warps=[
            WarpTrace(w, parse_program("""
                mov.u32 $r1, 0x1
                ld.global.u32 $r2, [$r1]
                add.u32 $r3, $r2, $r1
            """))
            for w in range(8)
        ])
        config = GPUConfig(scheduler_policy=SchedulerPolicy.TWO_LEVEL,
                           two_level_active_warps=2)
        result = simulate_baseline(trace, config=config)
        assert result.counters.instructions == trace.total_instructions


class TestFactory:
    def test_makes_gto(self):
        assert isinstance(make_scheduler(SchedulerPolicy.GTO, 0, [0]),
                          GTOScheduler)

    def test_makes_lrr(self):
        assert isinstance(make_scheduler(SchedulerPolicy.LRR, 0, [0]),
                          LRRScheduler)

    def test_makes_two_level(self):
        from repro.gpu.scheduler import TwoLevelScheduler

        sched = make_scheduler(SchedulerPolicy.TWO_LEVEL, 0, [0, 1, 2],
                               active_size=2)
        assert isinstance(sched, TwoLevelScheduler)

    def test_empty_warps_rejected(self):
        with pytest.raises(SimulationError):
            GTOScheduler(0, [])
