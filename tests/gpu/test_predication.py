"""Tests for warp-uniform predication in the timing engine."""

import pytest

from repro.core.bow_sm import simulate_design
from repro.gpu.reference import execute_reference
from repro.gpu.sm import simulate_baseline
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


class TestPredicateWrites:
    def test_compare_sets_predicate(self):
        # $r1=1, $r2=2: 1 != 2 -> $p0 true -> guarded mov executes.
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            set.ne.s32.s32 $p0/$o127, $r1, $r2
            @$p0 mov.u32 $r3, 0x7
        """))
        assert result.register_image[(0, 3)] == 7

    def test_false_guard_suppresses_write(self):
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x2
            mov.u32 $r2, 0x2
            mov.u32 $r3, 0x63
            set.ne.s32.s32 $p0/$o127, $r1, $r2
            @$p0 mov.u32 $r3, 0x7
        """))
        assert result.register_image[(0, 3)] == 0x63  # unchanged

    def test_negated_guard(self):
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x2
            mov.u32 $r2, 0x2
            set.ne.s32.s32 $p0/$o127, $r1, $r2
            @!$p0 mov.u32 $r3, 0x7
        """))
        assert result.register_image[(0, 3)] == 7

    def test_predicated_store_suppressed(self):
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x2
            set.ne.s32.s32 $p0/$o127, $r1, $r1
            @$p0 st.global.u32 [$r1], $r1
        """))
        assert result.memory_image == {}

    def test_sink_write_never_hits_rf(self):
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x1
            set.ne.s32.s32 $p0/$o127, $r1, $r1
        """))
        assert result.counters.rf_writes == 1  # only the mov

    def test_guard_waits_for_producer(self):
        # The guarded mov must observe the just-computed predicate even
        # though the compare has multi-cycle latency.
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            set.lt.s32.s32 $p1/$o127, $r1, $r2
            @$p1 mov.u32 $r4, 0x55
        """))
        assert result.register_image[(0, 4)] == 0x55


class TestAgainstReference:
    PROGRAM = """
        mov.u32 $r1, 0x5
        mov.u32 $r2, 0x5
        set.ne.s32.s32 $p0/$o127, $r1, $r2
        @$p0 mov.u32 $r3, 0x1
        @!$p0 mov.u32 $r3, 0x2
        set.lt.s32.s32 $p1/$o127, $r1, $r3
        @$p1 st.global.u32 [$r1], $r3
        @!$p1 st.global.u32 [$r2], $r1
    """

    def test_reference_agrees_with_engine(self):
        trace = single_warp(self.PROGRAM)
        reference = execute_reference(trace, memory_seed=2)
        result = simulate_baseline(trace, memory_seed=2)
        assert result.memory_image == reference.memory
        for key, value in reference.registers.items():
            assert result.register_image[key] == value

    @pytest.mark.parametrize("design", ["bow", "bow-wb"])
    def test_bow_designs_agree(self, design):
        trace = single_warp(self.PROGRAM)
        reference = execute_reference(trace, memory_seed=2)
        result = simulate_design(design, trace, window_size=3,
                                 memory_seed=2)
        assert result.memory_image == reference.memory
