"""Robustness and failure-injection tests for the SM engine."""

import pytest

from repro.config import GPUConfig
from repro.errors import DeadlockError, SimulationError
from repro.gpu.collector import BaselineCollectorPool, InflightInstruction
from repro.gpu.sm import SMEngine, simulate_baseline
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=0, instructions=parse_program(text))
    ])


class _StuckProvider(BaselineCollectorPool):
    """A provider that never requests operands: the pipeline starves."""

    def read_requests(self, cycle):
        return []


class _DroppingProvider(BaselineCollectorPool):
    """A provider that never reports ready instructions."""

    def ready_entries(self):
        return []


class TestDeadlockDetection:
    def test_stuck_collection_raises_deadlock(self):
        engine = SMEngine(
            single_warp("add.u32 $r1, $r2, $r3"),
            provider_factory=lambda e: _StuckProvider(
                e, e.config.num_operand_collectors),
        )
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        assert excinfo.value.cycle > 0

    def test_never_ready_raises_deadlock(self):
        engine = SMEngine(
            single_warp("add.u32 $r1, $r2, $r3"),
            provider_factory=lambda e: _DroppingProvider(
                e, e.config.num_operand_collectors),
        )
        with pytest.raises(DeadlockError):
            engine.run()

    def test_max_cycles_guard(self):
        trace = single_warp("\n".join(
            ["ld.global.u32 $r1, [$r2]"] * 5
        ))
        engine = SMEngine(trace)
        with pytest.raises(DeadlockError):
            engine.run(max_cycles=3)


class TestProviderMisuse:
    def test_unexpected_delivery_rejected(self):
        engine = SMEngine(single_warp("nop"))
        with pytest.raises(SimulationError):
            engine.provider.deliver(((0, 0), 0), 42)

    def test_insert_without_capacity_rejected(self):
        engine = SMEngine(single_warp("nop"),
                          config=GPUConfig(num_operand_collectors=1))
        pool = engine.provider
        first = InflightInstruction(0, 0, parse_program("nop")[0], 0)
        pool.insert(first)
        second = InflightInstruction(0, 1, parse_program("nop")[0], 0)
        with pytest.raises(SimulationError):
            pool.insert(second)

    def test_enqueue_write_needs_target(self):
        engine = SMEngine(single_warp("nop"))
        with pytest.raises(SimulationError):
            engine.enqueue_rf_write(None, 0)


class TestConfigurationInterplay:
    def test_single_collector_still_completes(self):
        config = GPUConfig(num_operand_collectors=1)
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
            add.u32 $r3, $r2, $r1
        """), config=config)
        assert result.counters.instructions == 3

    def test_fewer_collectors_never_faster(self):
        trace = KernelTrace(name="p", warps=[
            WarpTrace(w, parse_program("""
                mov.u32 $r1, 0x1
                add.u32 $r2, $r3, $r4
                add.u32 $r5, $r6, $r7
            """))
            for w in range(8)
        ])
        small = simulate_baseline(
            trace, config=GPUConfig(num_operand_collectors=2))
        large = simulate_baseline(
            trace, config=GPUConfig(num_operand_collectors=32))
        assert small.counters.cycles >= large.counters.cycles
        assert small.counters.issue_stalls_collector \
            >= large.counters.issue_stalls_collector

    def test_single_bank_serializes_heavily(self):
        heavy = GPUConfig(num_banks=1, entries_per_bank=2048)
        trace = KernelTrace(name="b", warps=[
            WarpTrace(w, parse_program("add.u32 $r1, $r2, $r3"))
            for w in range(8)
        ])
        one_bank = simulate_baseline(trace, config=heavy)
        many_banks = simulate_baseline(trace)
        assert one_bank.counters.bank_conflicts \
            > many_banks.counters.bank_conflicts

    def test_wider_issue_does_not_lose_instructions(self):
        config = GPUConfig(num_schedulers=1, issue_width_per_scheduler=1)
        trace = single_warp("""
            mov.u32 $r1, 0x1
            mov.u32 $r2, 0x2
            mov.u32 $r3, 0x3
        """)
        narrow = simulate_baseline(trace, config=config)
        wide = simulate_baseline(trace)
        assert narrow.counters.instructions == wide.counters.instructions

    def test_zero_latency_read_clamped(self):
        # rf_read_latency=1 is the minimum; the engine clamps internally
        # via max(1, ...), so a 1-cycle config completes correctly.
        config = GPUConfig(rf_read_latency=1)
        result = simulate_baseline(single_warp("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """), config=config)
        assert result.register_image[(0, 2)] == 2


class TestCrossbarWidth:
    def _pressure_trace(self):
        return KernelTrace(name="x", warps=[
            WarpTrace(w, parse_program("""
                add.u32 $r1, $r2, $r3
                add.u32 $r4, $r5, $r6
            """))
            for w in range(8)
        ])

    def test_narrow_crossbar_never_faster(self):
        trace = self._pressure_trace()
        narrow = simulate_baseline(trace, config=GPUConfig(crossbar_width=1))
        wide = simulate_baseline(trace, config=GPUConfig(crossbar_width=0))
        assert narrow.counters.cycles >= wide.counters.cycles
        assert narrow.counters.instructions == wide.counters.instructions

    def test_results_unaffected(self):
        trace = self._pressure_trace()
        narrow = simulate_baseline(trace, config=GPUConfig(crossbar_width=1))
        wide = simulate_baseline(trace)
        assert narrow.register_image == wide.register_image

    def test_negative_width_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GPUConfig(crossbar_width=-1)


class TestCollectorCountAblation:
    def test_driver(self):
        from repro.experiments.ablations import collector_count_ablation
        from repro.experiments.runner import RunScale, clear_cache

        clear_cache()
        result = collector_count_ablation(
            "SAD", unit_counts=(2, 32),
            scale=RunScale(num_warps=6, trace_scale=0.1),
        )
        clear_cache()
        (small_units, small_ipc, small_stalls), \
            (big_units, big_ipc, big_stalls) = result.points
        assert small_ipc <= big_ipc * 1.02
        assert small_stalls >= big_stalls
        assert "OCUs" in result.format()
