"""Tests for the baseline SM timing engine."""

import pytest

from repro.config import GPUConfig, SchedulerPolicy
from repro.errors import SimulationError
from repro.gpu.reference import execute_reference
from repro.gpu.sm import SMEngine, simulate_baseline
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace


def single_warp(text, warp_id=0):
    return KernelTrace(name="t", warps=[
        WarpTrace(warp_id=warp_id, instructions=parse_program(text))
    ])


SIMPLE = """
    mov.u32 $r1, 0x5
    add.u32 $r2, $r1, $r1
    st.global.u32 [$r1], $r2
"""


class TestFunctionalCorrectness:
    def test_simple_program_values(self):
        result = simulate_baseline(single_warp(SIMPLE))
        assert result.register_image[(0, 1)] == 5
        assert result.register_image[(0, 2)] == 10

    def test_matches_reference_executor(self):
        trace = single_warp(SIMPLE)
        reference = execute_reference(trace)
        result = simulate_baseline(trace)
        assert result.memory_image == reference.memory
        for key, value in reference.registers.items():
            assert result.register_image[key] == value

    def test_load_reads_stored_value(self):
        program = """
            mov.u32 $r1, 0x40
            mov.u32 $r2, 0x7
            st.global.u32 [$r1], $r2
            ld.global.u32 $r3, [$r1]
        """
        result = simulate_baseline(single_warp(program))
        assert result.register_image[(0, 3)] == 7

    def test_dependent_chain_ordering(self):
        program = """
            mov.u32 $r1, 0x1
            add.u32 $r1, $r1, $r1
            add.u32 $r1, $r1, $r1
            add.u32 $r1, $r1, $r1
        """
        result = simulate_baseline(single_warp(program))
        assert result.register_image[(0, 1)] == 8

    def test_multi_warp_isolation(self):
        trace = KernelTrace(name="t", warps=[
            WarpTrace(0, parse_program("mov.u32 $r1, 0x1")),
            WarpTrace(1, parse_program("mov.u32 $r1, 0x2")),
        ])
        result = simulate_baseline(trace)
        assert result.register_image[(0, 1)] == 1
        assert result.register_image[(1, 1)] == 2


class TestCounters:
    def test_instruction_count(self):
        result = simulate_baseline(single_warp(SIMPLE))
        assert result.counters.instructions == 3
        assert result.counters.issued == 3

    def test_rf_traffic_counted(self):
        result = simulate_baseline(single_warp(SIMPLE))
        counters = result.counters
        # mov: 0 reads; add: 2 reads; store: 2 reads => 4 reads.
        assert counters.rf_reads == 4
        # mov and add write; the store does not.
        assert counters.rf_writes == 2

    def test_no_bypassing_in_baseline(self):
        counters = simulate_baseline(single_warp(SIMPLE)).counters
        assert counters.bypassed_reads == 0
        assert counters.bypassed_writes == 0
        assert counters.boc_reads == 0

    def test_oc_wait_nonzero(self):
        counters = simulate_baseline(single_warp(SIMPLE)).counters
        assert counters.oc_wait_cycles > 0
        assert counters.lifetime_cycles >= counters.oc_wait_cycles

    def test_memory_instruction_count(self):
        counters = simulate_baseline(single_warp(SIMPLE)).counters
        assert counters.mem_instructions == 1

    def test_ipc_positive(self):
        result = simulate_baseline(single_warp(SIMPLE))
        assert 0 < result.ipc <= 1


class TestStructure:
    def test_too_many_warps_rejected(self):
        warps = [WarpTrace(i, parse_program("nop")) for i in range(33)]
        with pytest.raises(SimulationError):
            SMEngine(KernelTrace(name="big", warps=warps))

    def test_sparse_warp_ids_allowed(self):
        trace = KernelTrace(name="sparse", warps=[
            WarpTrace(5, parse_program("mov.u32 $r1, 0x1")),
            WarpTrace(11, parse_program("mov.u32 $r1, 0x2")),
        ])
        result = simulate_baseline(trace)
        assert result.counters.instructions == 2

    def test_empty_trace_finishes(self):
        trace = KernelTrace(name="empty", warps=[WarpTrace(0, [])])
        result = simulate_baseline(trace)
        assert result.counters.instructions == 0

    def test_control_instructions_complete(self):
        program = """
            mov.u32 $r1, 0x1
            bra 0x40
            add.u32 $r2, $r1, $r1
            exit
        """
        result = simulate_baseline(single_warp(program))
        assert result.counters.instructions == 4

    def test_lrr_scheduler_runs(self):
        config = GPUConfig(scheduler_policy=SchedulerPolicy.LRR)
        result = simulate_baseline(single_warp(SIMPLE), config=config)
        assert result.counters.instructions == 3

    def test_memory_seed_changes_cycles(self):
        program = "\n".join(
            f"ld.global.u32 $r{i}, [$r10]" for i in range(1, 9)
        )
        first = simulate_baseline(single_warp(program), memory_seed=1)
        second = simulate_baseline(single_warp(program), memory_seed=99)
        assert first.counters.instructions == second.counters.instructions
        # Latency draws differ; cycle counts almost surely do too.
        assert first.counters.cycles != second.counters.cycles

    def test_deterministic_given_seed(self):
        trace = single_warp(SIMPLE)
        a = simulate_baseline(trace, memory_seed=5).counters
        b = simulate_baseline(trace, memory_seed=5).counters
        assert a.cycles == b.cycles
        assert a.rf_reads == b.rf_reads


class TestHazardTiming:
    def test_raw_hazard_serializes(self):
        dependent = single_warp("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r1, $r1
        """)
        independent = single_warp("""
            mov.u32 $r1, 0x1
            add.u32 $r2, $r3, $r4
        """)
        dep_cycles = simulate_baseline(dependent).counters.cycles
        ind_cycles = simulate_baseline(independent).counters.cycles
        assert dep_cycles > ind_cycles

    def test_bank_conflicts_counted_under_pressure(self):
        # Many warps reading the same registers produce conflicts.
        warps = [
            WarpTrace(i, parse_program("""
                add.u32 $r2, $r1, $r3
                add.u32 $r4, $r1, $r3
                add.u32 $r5, $r1, $r3
            """))
            for i in range(16)
        ]
        result = simulate_baseline(KernelTrace(name="pressure", warps=warps))
        assert result.counters.bank_conflicts > 0
