"""Tests for the full-device simulation layer (:mod:`repro.gpu.device`).

The two load-bearing guarantees:

* ``num_sms=1`` is an exact identity — bit-identical counters and
  state images versus :func:`simulate_design`, for every registered
  design;
* multi-SM results are deterministic across job counts and executor
  kinds (serial / thread / process).
"""

from __future__ import annotations

import pytest

from repro.core.bow_sm import simulate_design
from repro.core.designs import design_names
from repro.errors import ExperimentError, SimulationError
from repro.gpu.device import merge_counters, partition_launch, simulate_device
from repro.isa import parse_program
from repro.kernels.synthetic import generate_compiled_trace, generate_trace
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.stats.counters import Counters
from repro.stats.trace import TraceRecorder

from ..conftest import SEED, small_spec

PROGRAM = """
    mov.u32 $r1, 0x5
    add.u32 $r2, $r1, $r1
    st.global.u32 [$r1], $r2
"""


def launch_trace(num_warps=16):
    return KernelTrace(name="device-launch", warps=[
        WarpTrace(warp_id=w, instructions=parse_program(PROGRAM))
        for w in range(num_warps)
    ])


def state_key(result):
    """Everything that must be bit-identical between two runs."""
    return (
        result.counters.as_dict(),
        sorted(result.register_image.items()),
        sorted(result.memory_image.items()),
    )


@pytest.fixture(scope="module")
def device_trace():
    """A realistic multi-warp trace (NW profile, 16 warps)."""
    return generate_trace(small_spec(warps=16))


class TestPartition:
    def test_deterministic(self):
        trace = launch_trace(16)
        first = partition_launch(trace, num_sms=4, seed=3)
        second = partition_launch(trace, num_sms=4, seed=3)
        assert first == second

    def test_every_warp_exactly_once(self):
        trace = launch_trace(13)  # not a multiple of the CTA size
        partition = partition_launch(trace, num_sms=4)
        seen = [w for sm in partition.sms for w in sm.warp_ids]
        assert sorted(seen) == list(range(13))
        assert len(seen) == len(set(seen))

    def test_warps_keep_global_ids(self):
        partition = partition_launch(launch_trace(16), num_sms=4)
        for sm in partition.sms:
            assert tuple(w.warp_id for w in sm.trace.warps) == sm.warp_ids

    def test_cta_stays_together(self):
        # With 4 warps per CTA, warps 0-3 must land on one SM.
        partition = partition_launch(launch_trace(16), num_sms=4, seed=0)
        home = {sm.sm_id for sm in partition.sms if 0 in sm.warp_ids}
        assert len(home) == 1
        (sm_id,) = home
        sm = next(s for s in partition.sms if s.sm_id == sm_id)
        assert {0, 1, 2, 3} <= set(sm.warp_ids)

    def test_seed_rotates_assignment(self):
        trace = launch_trace(16)
        base = partition_launch(trace, num_sms=4, seed=0)
        rotated = partition_launch(trace, num_sms=4, seed=1)
        by_id = {sm.sm_id: sm.warp_ids for sm in rotated.sms}
        # CTA i moves from SM i to SM (i+1) % 4.
        for sm in base.sms:
            assert by_id[(sm.sm_id + 1) % 4] == sm.warp_ids

    def test_idle_sms_counted(self):
        # 8 warps = 2 CTAs over 6 SMs leaves 4 slots empty.
        partition = partition_launch(launch_trace(8), num_sms=6)
        assert len(partition.sms) == 2
        assert partition.idle_sms == 4
        assert partition.num_ctas == 2

    def test_single_sm_single_partition(self):
        trace = launch_trace(16)
        partition = partition_launch(trace, num_sms=1, seed=9)
        assert len(partition.sms) == 1
        assert partition.sms[0].warp_ids == tuple(range(16))

    def test_validation(self):
        with pytest.raises(SimulationError):
            partition_launch(launch_trace(4), num_sms=0)
        with pytest.raises(SimulationError):
            partition_launch(launch_trace(4), num_sms=2, warps_per_cta=0)


class TestMergeCounters:
    def test_sums_except_cycles(self):
        first = Counters()
        first.cycles, first.instructions, first.rf_reads = 100, 40, 7
        second = Counters()
        second.cycles, second.instructions, second.rf_reads = 250, 60, 5
        merged = merge_counters([first, second])
        assert merged.instructions == 100
        assert merged.rf_reads == 12
        assert merged.cycles == 250  # max, not sum
        assert merged.ipc == pytest.approx(100 / 250)

    def test_empty(self):
        assert merge_counters([]).cycles == 0

    def test_single_is_identity(self):
        counters = Counters()
        counters.cycles, counters.instructions = 10, 5
        assert merge_counters([counters]).as_dict() == counters.as_dict()


class TestSingleSMIdentity:
    @pytest.mark.parametrize("design", design_names())
    def test_bit_identical_to_simulate_design(self, design, device_trace):
        trace = device_trace
        if "wr" in design or "hinted" in design:
            trace = generate_compiled_trace(small_spec(warps=16),
                                            window_size=3)
        single = simulate_design(design, trace, window_size=3,
                                 memory_seed=SEED)
        device = simulate_device(design, trace, num_sms=1, window_size=3,
                                 memory_seed=SEED)
        assert state_key(device.to_simulation_result()) == state_key(single)


class TestMultiSMDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, device_trace):
        return simulate_device("bow", device_trace, num_sms=4, window_size=3,
                               memory_seed=SEED, jobs=1)

    @pytest.mark.parametrize("executor,jobs", [
        ("serial", 1),
        ("thread", 4),
        ("process", 4),
    ])
    def test_identical_across_dispatchers(self, reference, device_trace,
                                          executor, jobs):
        run = simulate_device("bow", device_trace, num_sms=4, window_size=3,
                              memory_seed=SEED, jobs=jobs, executor=executor)
        assert state_key(run.to_simulation_result()) == \
            state_key(reference.to_simulation_result())
        for sm_id, result in reference.per_sm.items():
            assert state_key(run.per_sm[sm_id]) == state_key(result)

    def test_memory_placement_invariant(self, device_trace):
        # The same launch on 2 vs 4 SMs puts warps on different SMs,
        # but global warp ids + a shared memory seed mean the final
        # architectural state cannot change.
        two = simulate_device("bow", device_trace, num_sms=2, window_size=3,
                              memory_seed=SEED)
        four = simulate_device("bow", device_trace, num_sms=4, window_size=3,
                               memory_seed=SEED)
        assert sorted(two.register_image.items()) == \
            sorted(four.register_image.items())
        assert sorted(two.memory_image.items()) == \
            sorted(four.memory_image.items())


class TestAggregation:
    @pytest.fixture(scope="class")
    def device_run(self, device_trace):
        return simulate_device("bow", device_trace, num_sms=4, window_size=3,
                               memory_seed=SEED)

    def test_instructions_sum_over_sms(self, device_run, device_trace):
        total = sum(r.counters.instructions
                    for r in device_run.per_sm.values())
        assert device_run.counters.instructions == total
        assert total == device_trace.total_instructions

    def test_cycles_is_slowest_sm(self, device_run):
        slowest = max(r.counters.cycles for r in device_run.per_sm.values())
        assert device_run.counters.cycles == slowest

    def test_device_ipc(self, device_run):
        expected = (device_run.counters.instructions
                    / device_run.counters.cycles)
        assert device_run.ipc == pytest.approx(expected)
        assert device_run.ipc_per_sm == pytest.approx(expected / 4)

    def test_images_merge_disjoint(self, device_run):
        merged = {}
        for result in device_run.per_sm.values():
            for key, value in result.register_image.items():
                assert key not in merged  # global warp ids: no overlap
                merged[key] = value
        assert merged == device_run.register_image

    def test_load_imbalance_at_least_one(self, device_run):
        assert device_run.load_imbalance() >= 1.0

    def test_load_imbalance_all_zero_cycles_is_balanced(self, device_run):
        """Degenerate-but-balanced: every SM at zero cycles means every
        SM did exactly the mean amount of work, so the ratio is 1.0 —
        not the old 0.0, which read as "better than balanced"."""
        import dataclasses

        zeroed = {
            sm_id: dataclasses.replace(
                result,
                counters=dataclasses.replace(result.counters, cycles=0))
            for sm_id, result in device_run.per_sm.items()
        }
        degenerate = dataclasses.replace(device_run, per_sm=zeroed)
        assert degenerate.load_imbalance() == 1.0

    def test_load_imbalance_empty_device_is_zero(self, device_run):
        import dataclasses

        empty = dataclasses.replace(device_run, per_sm={})
        assert empty.load_imbalance() == 0.0

    def test_format_mentions_every_sm(self, device_run):
        text = device_run.format()
        assert "device IPC" in text
        for sm_id in device_run.per_sm:
            assert f"\n{sm_id} " in text or text.startswith(f"{sm_id} ")

    def test_attempts_recorded(self, device_run):
        assert device_run.attempts == {sm_id: 1
                                       for sm_id in device_run.per_sm}


class TestValidation:
    def test_zero_sms(self):
        with pytest.raises(SimulationError, match="num_sms"):
            simulate_device("bow", launch_trace(4), num_sms=0)

    def test_unknown_executor(self):
        with pytest.raises(SimulationError, match="executor"):
            simulate_device("bow", launch_trace(4), num_sms=2,
                            jobs=2, executor="rocket")

    def test_empty_launch(self):
        with pytest.raises(SimulationError, match="empty"):
            simulate_device("bow", KernelTrace(name="empty", warps=[]),
                            num_sms=2)

    def test_recorders_refuse_process_pool(self):
        with pytest.raises(SimulationError, match="recorder"):
            simulate_device("bow", launch_trace(8), num_sms=2, jobs=2,
                            executor="process",
                            recorder_factory=lambda sm: TraceRecorder())

    def test_config_default_sms(self):
        # num_sms=None falls back to config.num_sms.
        from dataclasses import replace

        from repro.config import GPUConfig

        config = replace(GPUConfig(), num_sms=2)
        run = simulate_device("bow", launch_trace(16), config=config)
        assert run.num_sms == 2


class TestRecorders:
    def test_per_sm_recorders(self, device_trace):
        run = simulate_device(
            "bow", device_trace, num_sms=2, window_size=3, memory_seed=SEED,
            recorder_factory=lambda sm_id: TraceRecorder(capacity=1024),
        )
        assert set(run.recorders) == set(run.per_sm)
        for recorder in run.recorders.values():
            assert recorder.emitted > 0

    def test_thread_pool_recorders(self, device_trace):
        run = simulate_device(
            "bow", device_trace, num_sms=2, window_size=3, memory_seed=SEED,
            jobs=2, executor="thread",
            recorder_factory=lambda sm_id: TraceRecorder(capacity=1024),
        )
        assert all(r.emitted > 0 for r in run.recorders.values())


class TestRetrySemantics:
    def _flaky_run_sm(self, fail_once_for):
        """A ``_run_sm`` stand-in that fails each listed SM once."""
        from repro.gpu import device as device_module

        real = device_module._run_sm
        remaining = set(fail_once_for)

        def run(args, recorder=None):
            sm_trace = args[1]
            sm_id = int(sm_trace.name.rsplit("@sm", 1)[1])
            if sm_id in remaining:
                remaining.discard(sm_id)
                raise OSError(f"injected transient failure on SM {sm_id}")
            return real(args, recorder)

        return run

    def test_serial_retries_transient(self, monkeypatch, device_trace):
        from repro.experiments.resilience import RetryPolicy
        from repro.gpu import device as device_module

        monkeypatch.setattr(device_module, "_run_sm",
                            self._flaky_run_sm({1}))
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        run = simulate_device("bow", device_trace, num_sms=4, window_size=3,
                              memory_seed=SEED, retry=policy)
        assert run.attempts[1] == 2
        assert all(run.attempts[sm] == 1 for sm in run.attempts if sm != 1)

    def test_thread_pool_retries_transient(self, monkeypatch, device_trace):
        from repro.experiments.resilience import RetryPolicy
        from repro.gpu import device as device_module

        monkeypatch.setattr(device_module, "_run_sm",
                            self._flaky_run_sm({0, 2}))
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        run = simulate_device("bow", device_trace, num_sms=4, window_size=3,
                              memory_seed=SEED, jobs=4, executor="thread",
                              retry=policy)
        assert run.attempts[0] == 2
        assert run.attempts[2] == 2
        # Retried runs still produce the canonical result.
        clean = simulate_device("bow", device_trace, num_sms=4, window_size=3,
                                memory_seed=SEED)
        assert state_key(run.to_simulation_result()) == \
            state_key(clean.to_simulation_result())

    def test_no_retry_surfaces_failure(self, monkeypatch, device_trace):
        from repro.gpu import device as device_module

        monkeypatch.setattr(device_module, "_run_sm",
                            self._flaky_run_sm({1}))
        with pytest.raises(SimulationError, match="SM 1"):
            simulate_device("bow", device_trace, num_sms=4, window_size=3,
                            memory_seed=SEED)

    def test_progress_callback(self, device_trace):
        lines = []
        simulate_device("bow", device_trace, num_sms=2, window_size=3,
                        memory_seed=SEED, progress=lines.append)
        assert len(lines) == 2
        assert all("SM" in line for line in lines)


class TestRunnerIntegration:
    def test_runscale_validates_num_sms(self):
        from repro.experiments.runner import RunScale

        with pytest.raises(ExperimentError, match="num_sms"):
            RunScale(num_sms=0)

    def test_resolve_num_sms(self):
        from repro.experiments.runner import resolve_num_sms

        assert resolve_num_sms(None) == 1
        assert resolve_num_sms(None, "bow") == 1  # registry default
        assert resolve_num_sms(4) == 4
        with pytest.raises(ExperimentError, match="num_sms"):
            resolve_num_sms(0)
        with pytest.raises(ExperimentError, match="num_sms"):
            resolve_num_sms(-3)

    def test_device_scale_helper(self):
        from repro.experiments.runner import QUICK, device_scale

        scaled = device_scale(QUICK, 4)
        assert scaled.num_sms == 4
        assert scaled.num_warps == QUICK.num_warps

    def test_memo_keys_distinct_per_sms(self):
        from dataclasses import replace

        from repro.experiments.runner import QUICK, memo_key

        single = memo_key("BTREE", "bow", 3, QUICK)
        device = memo_key("BTREE", "bow", 3, replace(QUICK, num_sms=4))
        assert single != device

    def test_run_design_routes_through_device(self):
        from dataclasses import replace

        from repro.experiments.runner import (
            QUICK,
            clear_cache,
            run_design,
            set_cache,
            simulations_run,
        )

        previous = set_cache(None)
        clear_cache()
        try:
            scale = replace(QUICK, num_warps=8, trace_scale=0.1, num_sms=2)
            before = simulations_run()
            first = run_design("BTREE", "bow", scale=scale)
            assert simulations_run() == before + 1
            again = run_design("BTREE", "bow", scale=scale)
            assert again is first  # memoized
            single = run_design("BTREE", "bow",
                                scale=replace(scale, num_sms=1))
            assert single is not first
            # Device cycles reflect the slowest SM, never the sum.
            assert first.counters.cycles <= single.counters.cycles
            assert (first.counters.instructions
                    == single.counters.instructions)
        finally:
            clear_cache()
            set_cache(previous)

    def test_disk_cache_round_trip(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.cache import RunCache
        from repro.experiments.runner import (
            QUICK,
            clear_cache,
            run_design,
            set_cache,
        )

        previous = set_cache(RunCache(tmp_path))
        try:
            scale = replace(QUICK, num_warps=8, trace_scale=0.1, num_sms=2)
            first = run_design("BTREE", "bow", scale=scale)
            clear_cache()  # drop the memo; force the disk path
            second = run_design("BTREE", "bow", scale=scale)
            assert state_key(second) == state_key(first)
        finally:
            clear_cache()
            set_cache(previous)
