"""Tests for the banked register file."""

from repro.config import GPUConfig
from repro.gpu.regfile import BankedRegisterFile


class TestValues:
    def test_write_then_read(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.write(0, 1, 42)
        assert rf.read(0, 1) == 42

    def test_values_isolated_per_warp(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.write(0, 1, 10)
        rf.write(1, 1, 20)
        assert rf.peek(0, 1) == 10
        assert rf.peek(1, 1) == 20

    def test_initial_values_deterministic(self):
        first = BankedRegisterFile(GPUConfig())
        second = BankedRegisterFile(GPUConfig())
        assert first.peek(3, 7) == second.peek(3, 7)

    def test_initial_values_distinct(self):
        rf = BankedRegisterFile(GPUConfig())
        assert rf.peek(0, 1) != rf.peek(0, 2)
        assert rf.peek(0, 1) != rf.peek(1, 1)

    def test_values_masked_to_32_bits(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.write(0, 1, 0x1_FFFF_FFFF)
        assert rf.peek(0, 1) == 0xFFFFFFFF


class TestAccessCounting:
    def test_read_write_counted(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.write(0, 1, 5)
        rf.read(0, 1)
        rf.read(0, 1)
        assert rf.writes == 1
        assert rf.reads == 2

    def test_peek_poke_not_counted(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.poke(0, 1, 5)
        rf.peek(0, 1)
        assert rf.reads == 0
        assert rf.writes == 0

    def test_poke_makes_value_visible(self):
        # Architectural visibility of queued writes (write-buffer
        # forwarding) relies on poke-then-write semantics.
        rf = BankedRegisterFile(GPUConfig())
        rf.poke(0, 1, 77)
        assert rf.read(0, 1) == 77


class TestSnapshot:
    def test_snapshot_is_copy(self):
        rf = BankedRegisterFile(GPUConfig())
        rf.write(0, 1, 5)
        snap = rf.snapshot()
        rf.write(0, 1, 9)
        assert snap[(0, 1)] == 5

    def test_bank_mapping_delegates_to_config(self):
        cfg = GPUConfig()
        rf = BankedRegisterFile(cfg)
        assert rf.bank_of(3, 9) == cfg.bank_of(3, 9)
