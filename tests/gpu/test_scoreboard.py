"""Tests for the issue-stage scoreboard."""

import pytest

from repro.errors import SimulationError
from repro.gpu.scoreboard import Scoreboard
from repro.isa import parse_program


def inst(text):
    return parse_program(text)[0]


class TestHazards:
    def test_raw_blocks(self):
        sb = Scoreboard(2)
        producer = inst("mov.u32 $r1, 0x1")
        consumer = inst("add.u32 $r2, $r1, $r1")
        sb.reserve(0, producer)
        assert not sb.can_issue(0, consumer)
        sb.release(0, producer)
        assert sb.can_issue(0, consumer)

    def test_waw_blocks(self):
        sb = Scoreboard(1)
        first = inst("mov.u32 $r1, 0x1")
        second = inst("mov.u32 $r1, 0x2")
        sb.reserve(0, first)
        assert not sb.can_issue(0, second)

    def test_independent_instructions_pass(self):
        sb = Scoreboard(1)
        sb.reserve(0, inst("mov.u32 $r1, 0x1"))
        assert sb.can_issue(0, inst("add.u32 $r2, $r3, $r4"))

    def test_warps_independent(self):
        sb = Scoreboard(2)
        sb.reserve(0, inst("mov.u32 $r1, 0x1"))
        assert sb.can_issue(1, inst("add.u32 $r2, $r1, $r1"))

    def test_store_never_blocks_on_dest(self):
        sb = Scoreboard(1)
        store = inst("st.global.u32 [$r1], $r2")
        assert sb.can_issue(0, store)
        sb.reserve(0, store)  # no-op: stores have no destination
        assert sb.pending_count(0) == 0


class TestSinkRegister:
    def test_sink_not_tracked(self):
        sb = Scoreboard(1)
        compare = inst("set.ne.s32.s32 $p0/$o127, $r1, $r2")
        sb.reserve(0, compare)
        assert sb.pending_count(0) == 0
        # A second predicate write has no WAW hazard.
        assert sb.can_issue(0, inst("set.ne.s32.s32 $p1/$o127, $r3, $r4"))


class TestBookkeeping:
    def test_double_reserve_rejected(self):
        sb = Scoreboard(1)
        producer = inst("mov.u32 $r1, 0x1")
        sb.reserve(0, producer)
        with pytest.raises(SimulationError):
            sb.reserve(0, inst("mov.u32 $r1, 0x9"))

    def test_release_idempotent(self):
        sb = Scoreboard(1)
        producer = inst("mov.u32 $r1, 0x1")
        sb.reserve(0, producer)
        sb.release(0, producer)
        sb.release(0, producer)
        assert sb.is_idle()

    def test_is_idle(self):
        sb = Scoreboard(2)
        assert sb.is_idle()
        sb.reserve(1, inst("mov.u32 $r1, 0x1"))
        assert not sb.is_idle()

    def test_invalid_warp_count(self):
        with pytest.raises(SimulationError):
            Scoreboard(0)
