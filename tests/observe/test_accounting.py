"""Property-based accounting: trace totals reconcile with Counters.

Over seeded random kernels (the ``test_properties`` program strategy,
extended to multiple warps), every aggregate the recorder maintains must
agree exactly with the corresponding ``Counters`` field — the recorder
is a second, independent bookkeeper of the same run, so any divergence
is a lost or double-counted event.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import BOWConfig, WritebackPolicy
from repro.core.bow_sm import simulate_bow, simulate_design
from repro.isa import Instruction
from repro.isa.opcodes import opcode_by_name
from repro.isa.registers import Register
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.stats.trace import EventKind, TraceRecorder

_ALU_OPS = ["mov", "add", "sub", "mul", "mad", "and", "or", "xor",
            "shl", "shr", "min", "max", "sel"]
_REG = st.integers(min_value=0, max_value=11)


@st.composite
def any_instruction(draw):
    kind = draw(st.integers(min_value=0, max_value=9))
    if kind <= 5:
        name = draw(st.sampled_from(_ALU_OPS))
        opcode = opcode_by_name(name)
        sources = tuple(
            Register(draw(_REG)) for _ in range(opcode.num_sources)
        )
        return Instruction(
            opcode=opcode,
            dest=Register(draw(_REG)),
            sources=sources,
            immediate=draw(st.integers(min_value=0, max_value=0xFFFF)),
        )
    if kind <= 7:
        return Instruction(
            opcode=opcode_by_name("ld.global"),
            dest=Register(draw(_REG)),
            sources=(Register(draw(_REG)),),
        )
    if kind == 8:
        return Instruction(
            opcode=opcode_by_name("st.global"),
            sources=(Register(draw(_REG)), Register(draw(_REG))),
        )
    return Instruction(opcode=opcode_by_name("nop"))


@st.composite
def kernel_traces(draw, max_warps=3, max_size=20):
    warps = draw(st.integers(min_value=1, max_value=max_warps))
    return KernelTrace(name="prop", warps=[
        WarpTrace(warp_id, draw(st.lists(any_instruction(), min_size=1,
                                         max_size=max_size)))
        for warp_id in range(warps)
    ])


def _reconcile(recorder: TraceRecorder, counters) -> None:
    """The full event-kind <-> counter correspondence table."""
    assert recorder.count(EventKind.ISSUE) == counters.issued
    assert recorder.count(EventKind.COMMIT) == counters.instructions
    assert (recorder.count(EventKind.ISSUE_STALL, "scoreboard")
            == counters.issue_stalls_scoreboard)
    assert (recorder.count(EventKind.ISSUE_STALL, "collector")
            == counters.issue_stalls_collector)
    assert (recorder.count(EventKind.DISPATCH_STALL, "exec_busy")
            == counters.exec_busy_stalls)
    assert (recorder.count(EventKind.BANK_CONFLICT)
            == counters.bank_conflicts)
    assert recorder.count(EventKind.BOC_HIT) == counters.bypassed_reads
    assert recorder.count(EventKind.BOC_INSERT) == counters.boc_writes
    assert (recorder.count(EventKind.BOC_EVICT, "capacity")
            == counters.boc_evictions)
    assert (recorder.count(EventKind.EVICTION_WRITEBACK)
            == counters.eviction_writebacks)
    assert (recorder.count(EventKind.WRITE_ELIMINATED)
            == counters.bypassed_writes)
    assert recorder.count(EventKind.WRITEBACK) == counters.rf_writes
    # Structural sanity on top of the exact identities.
    assert recorder.count(EventKind.ISSUE) == recorder.count(EventKind.COMMIT)
    assert (recorder.count(EventKind.BOC_EVICT, "capacity")
            >= counters.eviction_writebacks)


class TestWriteThroughReconciliation:
    @given(kernel_traces(), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_totals_reconcile(self, trace, window, seed):
        recorder = TraceRecorder()
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_THROUGH)
        result = simulate_bow(trace, bow=bow, memory_seed=seed,
                              recorder=recorder)
        _reconcile(recorder, result.counters)
        # Write-through never eliminates writes nor evicts dirty values.
        assert recorder.count(EventKind.WRITE_ELIMINATED) == 0
        assert recorder.count(EventKind.EVICTION_WRITEBACK) == 0


class TestWriteBackReconciliation:
    @given(kernel_traces(), st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_totals_reconcile_under_capacity_pressure(self, trace, window,
                                                      capacity):
        # Tiny operand stores force capacity evictions and their
        # writebacks, exercising the eviction accounting.
        recorder = TraceRecorder()
        bow = BOWConfig(window_size=window,
                        writeback=WritebackPolicy.WRITE_BACK,
                        capacity_entries=capacity)
        result = simulate_bow(trace, bow=bow, memory_seed=1,
                              recorder=recorder)
        _reconcile(recorder, result.counters)


class TestCrossDesignInvariants:
    @given(kernel_traces(max_warps=2, max_size=15),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_identical_instructions_across_designs(self, trace, seed):
        totals = set()
        for design in ("baseline", "bow", "bow-wb"):
            recorder = TraceRecorder(kinds={EventKind.COMMIT})
            result = simulate_design(design, trace, window_size=3,
                                     memory_seed=seed, recorder=recorder)
            assert (recorder.count(EventKind.COMMIT)
                    == result.counters.instructions)
            totals.add(recorder.count(EventKind.COMMIT))
        assert len(totals) == 1
