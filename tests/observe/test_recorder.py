"""Unit tests for the TraceRecorder ring buffer and its rollups."""

import pytest

from repro.errors import SimulationError
from repro.stats.trace import (
    STAGE_OF,
    STAGES,
    EventKind,
    TraceEvent,
    TraceRecorder,
)


class TestTaxonomy:
    def test_every_kind_has_a_stage(self):
        for kind in EventKind:
            assert STAGE_OF[kind] in STAGES

    def test_wire_names_are_unique(self):
        values = [kind.value for kind in EventKind]
        assert len(values) == len(set(values))


class TestEvent:
    def test_as_dict_omits_none_fields(self):
        event = TraceEvent(cycle=3, kind=EventKind.ISSUE, warp=1)
        assert event.as_dict() == {
            "cycle": 3, "kind": "issue", "warp": 1, "count": 1,
        }

    def test_as_dict_keeps_populated_fields(self):
        event = TraceEvent(cycle=9, kind=EventKind.WRITEBACK, warp=0,
                           reason="granted", register=4, bank=2)
        record = event.as_dict()
        assert record["reason"] == "granted"
        assert record["register"] == 4
        assert record["bank"] == 2


class TestRing:
    def test_capacity_validated(self):
        with pytest.raises(SimulationError):
            TraceRecorder(capacity=0)

    def test_ring_drops_oldest_but_aggregates_cover_all(self):
        recorder = TraceRecorder(capacity=4)
        for cycle in range(10):
            recorder.emit(cycle, EventKind.ISSUE, warp=0)
        assert recorder.emitted == 10
        assert recorder.dropped == 6
        assert [event.cycle for event in recorder.events] == [6, 7, 8, 9]
        assert recorder.count(EventKind.ISSUE) == 10

    def test_kinds_filter_ignores_other_kinds_entirely(self):
        recorder = TraceRecorder(kinds={EventKind.COMMIT})
        recorder.emit(1, EventKind.ISSUE, warp=0)
        recorder.emit(2, EventKind.COMMIT, warp=0)
        assert recorder.emitted == 1
        assert recorder.dropped == 0
        assert recorder.count(EventKind.ISSUE) == 0
        assert recorder.count(EventKind.COMMIT) == 1

    def test_kinds_filter_accepts_wire_names(self):
        recorder = TraceRecorder(kinds=["commit"])
        assert recorder.kinds == frozenset({EventKind.COMMIT})


class TestAggregation:
    def test_count_is_weighted(self):
        recorder = TraceRecorder()
        recorder.emit(5, EventKind.BANK_CONFLICT, bank=1, count=3)
        recorder.emit(6, EventKind.BANK_CONFLICT, bank=0, count=2)
        assert recorder.count(EventKind.BANK_CONFLICT) == 5
        assert len(recorder.events) == 2

    def test_reason_breakdown(self):
        recorder = TraceRecorder()
        recorder.emit(1, EventKind.ISSUE_STALL, warp=0, reason="scoreboard")
        recorder.emit(2, EventKind.ISSUE_STALL, warp=0, reason="scoreboard")
        recorder.emit(3, EventKind.ISSUE_STALL, warp=1, reason="collector")
        assert recorder.count(EventKind.ISSUE_STALL) == 3
        assert recorder.count(EventKind.ISSUE_STALL, "scoreboard") == 2
        assert recorder.count(EventKind.ISSUE_STALL, "collector") == 1
        assert recorder.count(EventKind.ISSUE_STALL, "nonesuch") == 0

    def test_stage_counts_roll_up_by_pipeline_stage(self):
        recorder = TraceRecorder()
        recorder.emit(1, EventKind.ISSUE, warp=0)
        recorder.emit(1, EventKind.ISSUE_STALL, warp=1, reason="scoreboard")
        recorder.emit(2, EventKind.BOC_HIT, warp=0, register=3)
        rollup = recorder.stage_counts()
        assert rollup["issue"] == 2
        assert rollup["collect"] == 1
        assert rollup["dispatch"] == 0
        assert rollup["writeback"] == 0

    def test_warp_summary(self):
        recorder = TraceRecorder()
        recorder.emit(1, EventKind.COMMIT, warp=0)
        recorder.emit(2, EventKind.COMMIT, warp=0)
        recorder.emit(3, EventKind.COMMIT, warp=1)
        summary = recorder.warp_summary()
        assert summary[0]["commit"] == 2
        assert summary[1]["commit"] == 1

    def test_commits_filterable_by_warp(self):
        recorder = TraceRecorder()
        recorder.emit(1, EventKind.COMMIT, warp=0, trace_index=0)
        recorder.emit(2, EventKind.ISSUE, warp=1)
        recorder.emit(3, EventKind.COMMIT, warp=1, trace_index=0)
        assert len(recorder.commits()) == 2
        assert [event.warp for event in recorder.commits(warp=1)] == [1]


class TestFormat:
    def test_format_mentions_drops_and_reasons(self):
        recorder = TraceRecorder(capacity=2)
        for cycle in range(5):
            recorder.emit(cycle, EventKind.ISSUE_STALL, warp=0,
                          reason="scoreboard")
        text = recorder.format()
        assert "5 events recorded" in text
        assert "3 dropped" in text
        assert "scoreboard: 5" in text

    def test_format_empty_recorder(self):
        text = TraceRecorder().format()
        assert "0 events recorded" in text
