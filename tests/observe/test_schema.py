"""Schema tests: real exporter output validates, malformed input fails.

Both validator paths are covered: the ``jsonschema`` package (present
in CI) and the built-in fallback interpreter ``_check`` (exercised
directly so the no-dependency path cannot rot).
"""

import json

import pytest

from repro.errors import SchemaError
from repro.observe.export import chrome_trace, write_events_jsonl
from repro.observe.schema import (
    CHROME_TRACE_SCHEMA,
    EVENT_SCHEMA,
    TELEMETRY_SCHEMA,
    _check,
    validate_chrome_trace,
    validate_event,
    validate_telemetry_record,
)
from repro.stats.trace import EventKind, TraceRecorder


@pytest.fixture
def recorder():
    rec = TraceRecorder()
    rec.emit(1, EventKind.ISSUE, warp=0, trace_index=0, opcode="MOV")
    rec.emit(2, EventKind.ISSUE_STALL, warp=0, reason="collector")
    rec.emit(3, EventKind.BANK_CONFLICT, bank=1, count=2)
    rec.emit(4, EventKind.COMMIT, warp=0, trace_index=0, opcode="MOV")
    return rec


class TestRealOutputValidates:
    def test_chrome_trace_document(self, recorder):
        validate_chrome_trace(chrome_trace(recorder))

    def test_events_jsonl(self, recorder, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(recorder, str(path))
        for line in path.read_text().splitlines():
            validate_event(json.loads(line))

    def test_simulated_trace_validates(self, oracle_runs):
        point = oracle_runs[("NW", "bow")]
        validate_chrome_trace(chrome_trace(point.recorder))


class TestRejection:
    def test_unknown_event_kind(self):
        with pytest.raises(SchemaError):
            validate_event({"cycle": 1, "kind": "teleport", "warp": 0,
                            "count": 1})

    def test_missing_required_field(self):
        with pytest.raises(SchemaError):
            validate_event({"cycle": 1, "kind": "issue", "warp": 0})

    def test_unexpected_property(self):
        with pytest.raises(SchemaError):
            validate_event({"cycle": 1, "kind": "issue", "warp": 0,
                            "count": 1, "color": "red"})

    def test_negative_cycle(self):
        with pytest.raises(SchemaError):
            validate_event({"cycle": -1, "kind": "issue", "warp": 0,
                            "count": 1})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError):
            validate_event({"cycle": True, "kind": "issue", "warp": 0,
                            "count": 1})

    def test_chrome_trace_rejects_bad_phase(self, recorder):
        doc = chrome_trace(recorder)
        doc["traceEvents"][-1]["ph"] = "X"
        with pytest.raises(SchemaError):
            validate_chrome_trace(doc)

    def test_telemetry_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            validate_telemetry_record({"type": "gossip"})

    def test_telemetry_rejects_bad_source(self):
        with pytest.raises(SchemaError):
            validate_telemetry_record({
                "type": "point", "benchmark": "NW", "design": "bow",
                "window": 3, "source": "wishful", "seconds": 0.1,
                "attempts": 1,
            })


class TestFallbackInterpreter:
    """``_check`` must agree with jsonschema on these documents."""

    def test_accepts_valid_event(self):
        _check({"cycle": 1, "kind": "issue", "warp": 0, "count": 1},
               EVENT_SCHEMA, "event")

    def test_accepts_valid_telemetry_point(self):
        _check({"type": "point", "benchmark": "NW", "design": "bow",
                "window": 3, "source": "sim", "seconds": 0.5,
                "attempts": 1, "cycles": 100, "instructions": 50,
                "ipc": 0.5}, TELEMETRY_SCHEMA, "telemetry")

    def test_oneof_requires_exactly_one_match(self):
        with pytest.raises(SchemaError) as excinfo:
            _check({"type": "gossip"}, TELEMETRY_SCHEMA, "telemetry")
        assert "oneOf" in str(excinfo.value)

    def test_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            _check({"cycle": "one", "kind": "issue", "warp": 0, "count": 1},
                   EVENT_SCHEMA, "event")

    def test_rejects_below_minimum(self):
        with pytest.raises(SchemaError):
            _check({"cycle": 1, "kind": "issue", "warp": -2, "count": 1},
                   EVENT_SCHEMA, "event")

    def test_chrome_document_via_fallback(self):
        recorder = TraceRecorder()
        recorder.emit(1, EventKind.ISSUE, warp=0)
        _check(chrome_trace(recorder), CHROME_TRACE_SCHEMA, "chrome")

    def test_agrees_with_jsonschema_on_corpus(self, recorder):
        jsonschema = pytest.importorskip("jsonschema")
        corpus = [
            ({"cycle": 1, "kind": "issue", "warp": 0, "count": 1},
             EVENT_SCHEMA),
            ({"cycle": 1, "kind": "nope", "warp": 0, "count": 1},
             EVENT_SCHEMA),
            ({"type": "summary", "wall_seconds": 1.0, "points": 4,
              "ok": True, "simulated": 4, "from_cache": 0, "from_memo": 0,
              "failed": 0, "cache": {}}, TELEMETRY_SCHEMA),
            ({"type": "summary"}, TELEMETRY_SCHEMA),
            (chrome_trace(recorder), CHROME_TRACE_SCHEMA),
        ]
        for instance, schema in corpus:
            try:
                jsonschema.validate(instance, schema)
                reference_ok = True
            except jsonschema.ValidationError:
                reference_ok = False
            try:
                _check(instance, schema, "corpus")
                fallback_ok = True
            except SchemaError:
                fallback_ok = False
            assert fallback_ok == reference_ok, instance
