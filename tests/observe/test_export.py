"""Tests for the Chrome-trace / CSV / JSONL exporters."""

import csv
import json

import pytest

from repro.observe.export import (
    CSV_COLUMNS,
    chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
)
from repro.stats.trace import EventKind, TraceRecorder


@pytest.fixture
def recorder():
    rec = TraceRecorder()
    rec.emit(1, EventKind.ISSUE, warp=0, trace_index=0, opcode="MOV")
    rec.emit(2, EventKind.ISSUE_STALL, warp=1, reason="scoreboard")
    rec.emit(3, EventKind.BANK_CONFLICT, bank=2, count=3)
    rec.emit(4, EventKind.WRITEBACK, warp=0, reason="granted", register=5,
             bank=1)
    rec.emit(5, EventKind.COMMIT, warp=0, trace_index=0, opcode="MOV")
    return rec


class TestChromeTrace:
    def test_metadata_names_process_and_warps(self, recorder):
        doc = chrome_trace(recorder, process_name="TEST/bow")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "TEST/bow" in names
        assert "warp 0" in names
        assert "sm-wide" in names  # the bank-conflict lane (warp -1)

    def test_one_instant_event_per_retained_record(self, recorder):
        doc = chrome_trace(recorder)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(recorder.events)
        by_name = {e["name"]: e for e in instants}
        conflict = by_name["bank_conflict"]
        assert conflict["ts"] == 3
        assert conflict["tid"] == 0  # warp -1 maps to lane 0
        assert conflict["args"]["count"] == 3
        assert conflict["args"]["bank"] == 2

    def test_other_data_carries_aggregates(self, recorder):
        doc = chrome_trace(recorder)
        other = doc["otherData"]
        assert other["emitted"] == 5
        assert other["dropped"] == 0
        assert other["counts"]["bank_conflict"] == 3

    def test_write_round_trips_through_json(self, recorder, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(recorder, str(path))
        assert json.loads(path.read_text()) == chrome_trace(recorder)


class TestCsv:
    def test_header_and_rows(self, recorder, tmp_path):
        path = tmp_path / "events.csv"
        write_events_csv(recorder, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(CSV_COLUMNS)
        assert len(rows) == 1 + len(recorder.events)
        stall = rows[2]
        assert stall[rows[0].index("kind")] == "issue_stall"
        assert stall[rows[0].index("reason")] == "scoreboard"
        assert stall[rows[0].index("register")] == ""  # absent field


class TestJsonl:
    def test_one_object_per_event_none_omitted(self, recorder, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(recorder, str(path))
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records == [event.as_dict() for event in recorder.events]
        assert "reason" not in records[0]  # ISSUE has no reason
        assert records[1]["reason"] == "scoreboard"
