"""Device-layer differential oracle: multi-SM runs stay bit-identical.

PR 3 established the single-SM differential oracle (every design vs the
functional reference).  This module extends it to the device layer: for
every design, at least one ``num_sms > 1`` configuration must produce
exactly the same architectural outcome as the single-SM run — register
image, memory image, instruction totals, and per-warp commit streams.
Only cycle counts may differ (the device merge takes ``max`` over SMs).

The launch is split into real multi-CTA work (``warps_per_cta=2`` over 4
warps -> 2 CTAs on 2 SMs), so the partitioning, placement-invariant
memory, and counter merge all get exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import pytest
from tests.conftest import SEED
from tests.observe.conftest import ALL_DESIGNS, CAPACITY, WINDOW, OraclePoint

from repro.gpu.device import DeviceResult, simulate_device
from repro.gpu.sm import SimulationResult
from repro.stats.trace import TraceRecorder

#: The benchmark the device sweep reuses from the single-SM oracle.
BENCHMARK = "NW"
NUM_SMS = 2
WARPS_PER_CTA = 2


@dataclass(frozen=True)
class DevicePoint:
    """One design's multi-SM observation next to its single-SM twin."""

    design: str
    single: OraclePoint
    device: DeviceResult
    merged: SimulationResult


@pytest.fixture(scope="session")
def device_runs(oracle_runs) -> Dict[str, DevicePoint]:
    """Every design once at ``num_sms=2`` over the oracle benchmark."""
    points: Dict[str, DevicePoint] = {}
    for design in ALL_DESIGNS:
        single = oracle_runs[(BENCHMARK, design)]
        device = simulate_device(
            design,
            single.trace,
            num_sms=NUM_SMS,
            window_size=WINDOW,
            memory_seed=SEED,
            warps_per_cta=WARPS_PER_CTA,
            jobs=1,
            executor="serial",
            recorder_factory=lambda sm_id: TraceRecorder(capacity=CAPACITY),
        )
        points[design] = DevicePoint(
            design=design,
            single=single,
            device=device,
            merged=device.to_simulation_result(),
        )
    return points


def _device_commits(point: DevicePoint) -> Dict[int, Tuple[Tuple[int, str], ...]]:
    """Per-warp committed (trace_index, opcode) streams across all SMs."""
    streams: Dict[int, list] = {}
    for recorder in point.device.recorders.values():
        assert recorder.dropped == 0
        for event in recorder.commits():
            streams.setdefault(event.warp, []).append(
                (event.trace_index, event.opcode)
            )
    return {
        warp: tuple(sorted(stream)) for warp, stream in streams.items()
    }


@pytest.mark.parametrize("design", ALL_DESIGNS)
class TestDeviceMatchesSingleSM:
    def test_launch_really_splits(self, device_runs, design):
        point = device_runs[design]
        assert point.device.partition.num_sms == NUM_SMS
        occupied = {
            sm.sm_id for sm in point.device.partition.sms
            if sm.trace.num_warps
        }
        assert len(occupied) == NUM_SMS

    def test_register_image_identical(self, device_runs, design):
        point = device_runs[design]
        assert point.merged.register_image == point.single.untraced.register_image

    def test_memory_image_identical(self, device_runs, design):
        point = device_runs[design]
        assert point.merged.memory_image == point.single.untraced.memory_image

    def test_instruction_totals_identical(self, device_runs, design):
        point = device_runs[design]
        assert (point.merged.counters.instructions
                == point.single.untraced.counters.instructions)
        assert (point.merged.counters.instructions
                == point.single.reference.instructions)

    def test_commit_streams_match_reference(self, device_runs, design):
        point = device_runs[design]
        reference = {
            warp: tuple(sorted(stream))
            for warp, stream in point.single.reference.commits_by_warp().items()
        }
        assert _device_commits(point) == reference
