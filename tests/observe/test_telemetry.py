"""Tests for the sweep-telemetry stream (writer + run_grid wiring)."""

import io
import json

import pytest

from repro.experiments.grid import run_grid
from repro.experiments.runner import RunScale, clear_cache, set_cache
from repro.observe.schema import validate_telemetry_record
from repro.observe.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryWriter

SCALE = RunScale(num_warps=2, trace_scale=0.1)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    yield
    set_cache(previous)
    clear_cache()


def _records(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestWriter:
    def test_path_target_owns_the_file(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path)) as telemetry:
            telemetry.emit({"type": "start"})
            telemetry.emit({"type": "summary"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert telemetry.records == 2
        assert json.loads(lines[0]) == {"type": "start"}

    def test_stream_target_left_open(self):
        stream = io.StringIO()
        writer = TelemetryWriter(stream)
        writer.emit({"a": 1})
        writer.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"a": 1}

    def test_emit_after_close_raises(self, tmp_path):
        writer = TelemetryWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.emit({})

    def test_lines_are_flushed_immediately(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        writer = TelemetryWriter(str(path))
        writer.emit({"type": "start"})
        # Visible to a tailing reader before close.
        assert path.read_text().strip()
        writer.close()


class TestEncodingRegression:
    """File I/O must pin ``encoding="utf-8"`` — on a platform whose
    locale encoding cannot represent the payload (e.g. cp1252), an
    unpinned ``open`` corrupts or crashes on non-ASCII content."""

    #: Contains U+0394 (GREEK CAPITAL LETTER DELTA), absent from cp1252.
    NON_ASCII = "BFS-Δ"

    @pytest.fixture
    def hostile_locale(self, monkeypatch):
        """Make unpinned text opens default to cp1252 (``os.fdopen``
        and ``pathlib`` route through ``io.open``; plain calls through
        ``builtins.open``)."""
        import builtins

        real_open = builtins.open

        def locale_open(file, mode="r", *args, **kwargs):
            # encoding is positional arg 3 (after mode and buffering);
            # only inject when the call left it unset.
            if ("b" not in mode and len(args) < 2
                    and kwargs.get("encoding") is None):
                kwargs["encoding"] = "cp1252"
            return real_open(file, mode, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", locale_open)
        monkeypatch.setattr(io, "open", locale_open)

    def test_telemetry_writes_utf8_under_hostile_locale(
            self, tmp_path, hostile_locale):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(path)) as telemetry:
            telemetry.emit({"type": "start", "benchmark": self.NON_ASCII})
        record = json.loads(path.read_bytes().decode("utf-8"))
        assert record["benchmark"] == self.NON_ASCII

    def test_cache_round_trips_utf8_under_hostile_locale(
            self, tmp_path, hostile_locale):
        from repro.experiments.cache import RunCache, run_key
        from repro.experiments.runner import execute_run

        cache = RunCache(tmp_path / "runs")
        result = execute_run("BFS", "baseline", scale=SCALE)
        key = run_key("BFS", "baseline", 0, SCALE)
        cache.put(key, result)
        assert cache.stats.io_errors == 0
        assert cache.get(key) == result
        # The entry read/write helpers are pinned to UTF-8, so a
        # payload cp1252 cannot encode still round-trips byte-exact.
        target = tmp_path / "runs" / "probe.json"
        cache._write_entry(target, json.dumps(
            {"benchmark": self.NON_ASCII}, ensure_ascii=False))
        assert (json.loads(target.read_bytes().decode("utf-8"))
                == {"benchmark": self.NON_ASCII})
        assert (json.loads(cache._read_text(target))["benchmark"]
                == self.NON_ASCII)


class TestTee:
    def test_fans_out_to_every_sink(self):
        left, right = io.StringIO(), io.StringIO()
        from repro.observe.telemetry import TelemetryTee

        tee = TelemetryTee(TelemetryWriter(left), TelemetryWriter(right))
        tee.emit({"type": "start"})
        assert json.loads(left.getvalue()) == {"type": "start"}
        assert json.loads(right.getvalue()) == {"type": "start"}

    def test_none_sinks_skipped(self):
        from repro.observe.telemetry import TelemetryTee

        stream = io.StringIO()
        tee = TelemetryTee(None, TelemetryWriter(stream), None)
        tee.emit({"a": 1})
        assert json.loads(stream.getvalue()) == {"a": 1}

    def test_empty_tee_is_a_no_op(self):
        from repro.observe.telemetry import TelemetryTee

        TelemetryTee(None).emit({"a": 1})  # must not raise


class TestStamped:
    def test_fixed_fields_merged_into_every_record(self):
        from repro.observe.telemetry import StampedTelemetry

        stream = io.StringIO()
        stamped = StampedTelemetry(TelemetryWriter(stream), job=3)
        stamped.emit({"type": "job-point"})
        stamped.emit({"type": "job-summary"})
        records = _records(stream)
        assert all(record["job"] == 3 for record in records)

    def test_record_fields_win_on_collision(self):
        from repro.observe.telemetry import StampedTelemetry

        stream = io.StringIO()
        stamped = StampedTelemetry(TelemetryWriter(stream), job=3)
        stamped.emit({"type": "x", "job": 9})
        assert _records(stream)[0]["job"] == 9


class TestGridTelemetry:
    def test_stream_shape_and_validity(self):
        stream = io.StringIO()
        run_grid(("NW", "BFS"), ("baseline", "bow"), (3,), scale=SCALE,
                 telemetry=TelemetryWriter(stream))
        records = _records(stream)
        for record in records:
            validate_telemetry_record(record)
        types = [record["type"] for record in records]
        assert types[0] == "start"
        assert types[-1] == "summary"
        assert types.count("point") == 4

    def test_start_record_describes_the_grid(self):
        stream = io.StringIO()
        run_grid(("NW",), ("baseline", "bow"), (3,), scale=SCALE,
                 telemetry=TelemetryWriter(stream))
        start = _records(stream)[0]
        assert start["schema"] == TELEMETRY_SCHEMA_VERSION
        assert start["points"] == 2
        assert start["benchmarks"] == ["NW"]
        assert start["designs"] == ["baseline", "bow"]
        assert start["scale"]["num_warps"] == 2

    def test_point_records_carry_provenance_and_results(self):
        stream = io.StringIO()
        grid = run_grid(("NW",), ("bow",), (3,), scale=SCALE,
                        telemetry=TelemetryWriter(stream))
        point = [r for r in _records(stream) if r["type"] == "point"][0]
        assert point["benchmark"] == "NW"
        assert point["design"] == "bow"
        assert point["source"] == "sim"
        assert point["attempts"] >= 1
        key = ("NW", "bow", 3)
        assert point["cycles"] == grid.results[key].counters.cycles
        assert point["ipc"] == pytest.approx(grid.results[key].ipc)

    def test_memo_hits_report_zero_attempts(self):
        stream = io.StringIO()
        run_grid(("NW",), ("baseline",), (3,), scale=SCALE)
        run_grid(("NW",), ("baseline",), (3,), scale=SCALE,
                 telemetry=TelemetryWriter(stream))
        point = [r for r in _records(stream) if r["type"] == "point"][0]
        assert point["source"] == "memo"
        assert point["attempts"] == 0

    def test_summary_totals(self):
        stream = io.StringIO()
        run_grid(("NW",), ("baseline", "bow"), (3,), scale=SCALE,
                 telemetry=TelemetryWriter(stream))
        summary = _records(stream)[-1]
        assert summary["ok"] is True
        assert summary["points"] == 2
        assert summary["simulated"] == 2
        assert summary["failed"] == 0
        assert summary["wall_seconds"] >= 0

    def test_no_telemetry_keeps_grid_behaviour(self):
        grid = run_grid(("NW",), ("baseline",), (3,), scale=SCALE)
        assert grid.simulated == 1


class TestFailureTelemetry:
    def test_failures_streamed_and_summary_not_ok(self, tmp_path):
        from repro.testing.faults import FaultSpec, injected_faults

        stream = io.StringIO()
        with injected_faults(7, tmp_path / "faults",
                             [FaultSpec("raise", times=0,
                                        match="NW/bow IW3")]):
            grid = run_grid(("NW",), ("baseline", "bow"), (3,),
                            scale=RunScale(num_warps=2, trace_scale=0.1,
                                           memory_seed=7),
                            strict=False,
                            telemetry=TelemetryWriter(stream))
        records = _records(stream)
        for record in records:
            validate_telemetry_record(record)
        failures = [r for r in records if r["type"] == "failure"]
        assert len(failures) == len(grid.failures) == 1
        failure = failures[0]
        assert failure["label"] == "NW/bow IW3"
        assert failure["kind"] == "permanent"
        assert failure["attempts"] >= 1
        summary = records[-1]
        assert summary["ok"] is False
        assert summary["failed"] == 1

    def test_strict_failure_still_writes_summary(self, tmp_path):
        from repro.errors import ExperimentError
        from repro.testing.faults import FaultSpec, injected_faults

        stream = io.StringIO()
        with injected_faults(7, tmp_path / "faults",
                             [FaultSpec("raise", times=0,
                                        match="NW/bow IW3")]):
            with pytest.raises(ExperimentError):
                run_grid(("NW",), ("bow",), (3,),
                         scale=RunScale(num_warps=2, trace_scale=0.1,
                                        memory_seed=7),
                         strict=True,
                         telemetry=TelemetryWriter(stream))
        records = _records(stream)
        assert records[-1]["type"] == "summary"
        assert records[-1]["ok"] is False
