"""Fixtures for the observability suite.

The differential-oracle and reconciliation tests sweep every design
over a small QUICK-style benchmark subset.  Runs are the expensive
part, so each (benchmark, design) point is simulated exactly once per
session — traced and untraced — and shared via the ``oracle_runs``
fixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import pytest
from tests.conftest import SEED, small_spec

from repro.core.bow_sm import DESIGNS, simulate_design
from repro.gpu.reference import ReferenceResult, execute_reference
from repro.gpu.sm import SimulationResult
from repro.kernels.synthetic import generate_compiled_trace, generate_trace
from repro.kernels.trace import KernelTrace
from repro.stats.trace import TraceRecorder

#: The QUICK benchmark subset the oracle sweeps (shrunk specs so the
#: full designs x benchmarks matrix stays fast).
ORACLE_BENCHMARKS = ("NW", "BFS", "SAD")

#: Every runnable design: the registry plus the RFC comparison point.
ALL_DESIGNS = tuple(sorted(DESIGNS)) + ("rfc",)

#: Designs that leave dead (compiler-transient) values out of the RF;
#: their final register file is a *subset* of the reference image.
HINTED_DESIGNS = frozenset({"bow-wr", "bow-wr-half"})

#: Ring capacity large enough to retain every event of these runs.
CAPACITY = 1 << 18

WINDOW = 3


@dataclass(frozen=True)
class OraclePoint:
    """One (benchmark, design) observation: traced + untraced runs
    against the ground-truth reference for the *same* trace."""

    benchmark: str
    design: str
    trace: KernelTrace
    reference: ReferenceResult
    traced: SimulationResult
    untraced: SimulationResult
    recorder: TraceRecorder


def _benchmark_trace(benchmark: str, hinted: bool) -> KernelTrace:
    spec = small_spec(benchmark, warps=4, iterations=4)
    if hinted:
        return generate_compiled_trace(spec, window_size=WINDOW)
    return generate_trace(spec)


def _run_point(benchmark: str, design: str) -> OraclePoint:
    trace = _benchmark_trace(benchmark, design in HINTED_DESIGNS)
    recorder = TraceRecorder(capacity=CAPACITY)
    traced = simulate_design(design, trace, window_size=WINDOW,
                             memory_seed=SEED, recorder=recorder)
    untraced = simulate_design(design, trace, window_size=WINDOW,
                               memory_seed=SEED)
    assert recorder.dropped == 0, (
        f"oracle ring too small: {recorder.emitted} events > {CAPACITY}"
    )
    return OraclePoint(
        benchmark=benchmark,
        design=design,
        trace=trace,
        reference=execute_reference(trace, memory_seed=SEED),
        traced=traced,
        untraced=untraced,
        recorder=recorder,
    )


@pytest.fixture(scope="session")
def oracle_runs() -> Dict[Tuple[str, str], OraclePoint]:
    """Every design x oracle-benchmark point, simulated once."""
    return {
        (benchmark, design): _run_point(benchmark, design)
        for benchmark in ORACLE_BENCHMARKS
        for design in ALL_DESIGNS
    }
