"""Differential oracle: every design vs the functional reference.

For every design in the registry (plus RFC) over the QUICK benchmark
subset, the timing model must be architecturally equivalent to
``gpu.reference.execute_reference`` on the *same* trace:

* the final memory image is identical;
* the final register file matches the reference image — exactly for
  designs that flush every value to the RF, and up to elided dead
  values for the compiler-hinted designs (where any register the design
  *did* write must hold the reference value);
* the committed-instruction stream (the recorder's ``commit`` events)
  is, per warp and sorted to program order, exactly the reference's
  architectural commit stream;
* attaching a :class:`TraceRecorder` leaves ``Counters`` bit-identical
  and the architectural images unchanged (observation must not perturb
  the run).
"""

import pytest
from tests.observe.conftest import (
    ALL_DESIGNS,
    HINTED_DESIGNS,
    ORACLE_BENCHMARKS,
)

from repro.isa import WritebackHint
from repro.isa.registers import SINK_REGISTER
from repro.stats.trace import EventKind

POINTS = [(benchmark, design)
          for benchmark in ORACLE_BENCHMARKS
          for design in ALL_DESIGNS]


def _point(oracle_runs, bench, design):
    return oracle_runs[(bench, design)]


def _last_writes(trace):
    """The last static write of each (warp, register) in the trace."""
    last = {}
    for warp in trace:
        for inst in warp:
            if inst.dest is not None and inst.dest != SINK_REGISTER:
                last[(warp.warp_id, inst.dest.id)] = inst
    return last


@pytest.mark.parametrize("bench,design", POINTS)
class TestArchitecturalState:
    def test_memory_image_matches_reference(self, oracle_runs, bench,
                                            design):
        point = _point(oracle_runs, bench, design)
        assert point.traced.memory_image == point.reference.memory

    def test_register_state_matches_reference(self, oracle_runs, bench,
                                              design):
        point = _point(oracle_runs, bench, design)
        image = point.traced.register_image
        last_writes = _last_writes(point.trace) if design in HINTED_DESIGNS \
            else {}
        for key, value in point.reference.registers.items():
            if design in HINTED_DESIGNS:
                # The compiler may classify a register's final write as
                # OC-only (dead beyond the window) and elide its RF
                # write; the RF then legitimately holds an earlier
                # RF-bound value.  But a register whose *last* write is
                # unpredicated and RF-bound must land exactly.
                inst = last_writes.get(key)
                if inst is not None and (
                    inst.predicate is not None
                    or inst.hint is WritebackHint.OC_ONLY
                ):
                    continue
                if key not in image:
                    continue  # never materialized in the RF model
            assert image[key] == value, (
                f"{design}: register {key} holds {image[key]:#x}, "
                f"reference says {value:#x}"
            )


@pytest.mark.parametrize("bench,design", POINTS)
class TestCommitStream:
    def test_commit_stream_matches_reference(self, oracle_runs, bench,
                                             design):
        point = _point(oracle_runs, bench, design)
        assert point.recorder.dropped == 0
        warps = {warp_id for warp_id, _, _ in point.reference.committed}
        for warp_id in warps:
            expected = [(index, opcode)
                        for wid, index, opcode in point.reference.committed
                        if wid == warp_id]
            # The engine retires out of order within a warp; sorting by
            # trace index recovers program order.
            actual = sorted(
                (event.trace_index, event.opcode)
                for event in point.recorder.commits(warp=warp_id)
            )
            assert actual == expected

    def test_commit_count_matches_counters(self, oracle_runs, bench,
                                           design):
        point = _point(oracle_runs, bench, design)
        assert (point.recorder.count(EventKind.COMMIT)
                == point.traced.counters.instructions
                == len(point.reference.committed))


@pytest.mark.parametrize("bench,design", POINTS)
class TestObservationIsFree:
    def test_counters_bit_identical_with_recorder(self, oracle_runs,
                                                  bench, design):
        point = _point(oracle_runs, bench, design)
        assert (point.traced.counters.as_dict()
                == point.untraced.counters.as_dict())

    def test_images_identical_with_recorder(self, oracle_runs, bench,
                                            design):
        point = _point(oracle_runs, bench, design)
        assert point.traced.register_image == point.untraced.register_image
        assert point.traced.memory_image == point.untraced.memory_image
