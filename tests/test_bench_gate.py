"""Tests for the perf-regression gate (``tools/update_bench_baseline.py``).

The tool lives outside the package (it is CI plumbing, not simulator
code), so it is loaded by file path.  These tests pin the comparison
semantics the CI job relies on: generous threshold, failure on missing
coverage, and tolerance for new designs and speedups.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

TOOL_PATH = (Path(__file__).parent.parent / "tools"
             / "update_bench_baseline.py")


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("update_bench_baseline",
                                                  TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def results_document(rates):
    """A minimal pytest-benchmark JSON document with our extra_info."""
    return {
        "benchmarks": [
            {"extra_info": {"design": design, "cycles_per_sec": rate,
                            "cycles": 1000}}
            for design, rate in rates.items()
        ],
    }


def baseline_designs(rates):
    return {design: {"cycles_per_sec": rate, "cycles": 1000}
            for design, rate in rates.items()}


class TestExtractRates:
    def test_extracts_engine_entries(self, tool):
        rates = tool.extract_rates(results_document({"bow": 5000}))
        assert rates == {"bow": {"cycles_per_sec": 5000, "cycles": 1000,
                                 "fast_forwarded_cycles": 0}}

    def test_ignores_foreign_benches(self, tool):
        document = {"benchmarks": [
            {"extra_info": {}},  # a figure bench: no engine fields
            {"extra_info": {"design": "bow", "cycles_per_sec": 5000}},
        ]}
        assert list(tool.extract_rates(document)) == ["bow"]

    def test_bench_tag_qualifies_the_key(self, tool):
        document = {"benchmarks": [
            {"extra_info": {"bench": "SAD", "design": "bow",
                            "cycles_per_sec": 5000}},
            {"extra_info": {"bench": "VECTORADD-mem", "design": "bow",
                            "cycles_per_sec": 9000,
                            "fast_forwarded_cycles": 800}},
        ]}
        rates = tool.extract_rates(document)
        assert sorted(rates) == ["SAD/bow", "VECTORADD-mem/bow"]
        assert rates["VECTORADD-mem/bow"]["fast_forwarded_cycles"] == 800

    def test_empty_document(self, tool):
        assert tool.extract_rates({}) == {}


class TestCompare:
    def test_identical_passes(self, tool):
        baseline = baseline_designs({"bow": 1000, "baseline": 2000})
        current = baseline_designs({"bow": 1000, "baseline": 2000})
        assert tool.compare(baseline, current) == []

    def test_small_drop_within_threshold_passes(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 800})  # -20% < 25%
        assert tool.compare(baseline, current, threshold=0.25) == []

    def test_large_drop_fails(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 700})  # -30% > 25%
        problems = tool.compare(baseline, current, threshold=0.25)
        assert len(problems) == 1
        assert "bow" in problems[0]
        assert "30.0%" in problems[0]

    def test_speedup_passes(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 5000})
        assert tool.compare(baseline, current) == []

    def test_missing_design_fails(self, tool):
        baseline = baseline_designs({"bow": 1000, "rfc": 1000})
        current = baseline_designs({"bow": 1000})
        problems = tool.compare(baseline, current)
        assert len(problems) == 1
        assert "rfc" in problems[0]

    def test_new_design_tolerated(self, tool):
        # A design added to the bench but not yet in the baseline must
        # not fail the gate (the baseline refresh lands separately).
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 1000, "shiny": 10})
        assert tool.compare(baseline, current) == []

    def test_threshold_is_configurable(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 899})  # -10.1%
        assert tool.compare(baseline, current, threshold=0.25) == []
        assert tool.compare(baseline, current, threshold=0.10)


class TestImprovements:
    def test_large_gain_noticed(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 1500})  # +50% > 25%
        notices = tool.improvements(baseline, current, threshold=0.25)
        assert len(notices) == 1
        assert "re-baseline" in notices[0]

    def test_small_gain_quiet(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 1200})  # +20% < 25%
        assert tool.improvements(baseline, current, threshold=0.25) == []

    def test_drop_is_not_an_improvement(self, tool):
        baseline = baseline_designs({"bow": 1000})
        current = baseline_designs({"bow": 100})
        assert tool.improvements(baseline, current) == []

    def test_missing_entry_skipped(self, tool):
        baseline = baseline_designs({"bow": 1000, "rfc": 1000})
        current = baseline_designs({"bow": 5000})
        notices = tool.improvements(baseline, current)
        assert len(notices) == 1 and "bow" in notices[0]


class TestCheckCommand:
    def write(self, path, document):
        path.write_text(json.dumps(document))
        return path

    def baseline_file(self, tool, tmp_path, rates):
        return self.write(tmp_path / "baseline.json",
                          {"designs": baseline_designs(rates)})

    def test_passing_check_exits_zero(self, tool, tmp_path, capsys):
        baseline = self.baseline_file(tool, tmp_path, {"bow": 1000})
        results = self.write(tmp_path / "results.json",
                             results_document({"bow": 1100}))
        assert tool.main(["--check", str(results),
                          "--baseline", str(baseline)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_large_gain_passes_with_notice(self, tool, tmp_path, capsys):
        baseline = self.baseline_file(tool, tmp_path, {"bow": 1000})
        results = self.write(tmp_path / "results.json",
                             results_document({"bow": 2000}))
        assert tool.main(["--check", str(results),
                          "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "perf progress notice" in out
        assert "gate passed" in out

    def test_regression_exits_one(self, tool, tmp_path, capsys):
        baseline = self.baseline_file(tool, tmp_path, {"bow": 1000})
        results = self.write(tmp_path / "results.json",
                             results_document({"bow": 100}))
        assert tool.main(["--check", str(results),
                          "--baseline", str(baseline)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_missing_baseline_exits_one(self, tool, tmp_path, capsys):
        results = self.write(tmp_path / "results.json",
                             results_document({"bow": 1000}))
        assert tool.main(["--check", str(results),
                          "--baseline", str(tmp_path / "nope.json")]) == 1
        assert "no baseline" in capsys.readouterr().err

    def test_bad_threshold_rejected(self, tool, tmp_path):
        results = self.write(tmp_path / "results.json",
                             results_document({"bow": 1000}))
        with pytest.raises(SystemExit):
            tool.main(["--check", str(results), "--threshold", "2.0"])


class TestCommittedBaseline:
    def test_baseline_matches_bench_designs(self, tool):
        """The committed baseline covers exactly the bench's entries."""
        document = json.loads(tool.BASELINE_PATH.read_text())
        from benchmarks.test_engine_perf import (BENCH, DESIGNS, MEM_BENCH,
                                                 MEM_DESIGNS)

        expected = [f"{BENCH}/{design}" for design in DESIGNS]
        expected += [f"{MEM_BENCH}-mem/{design}" for design in MEM_DESIGNS]
        assert sorted(document["designs"]) == sorted(expected)
        for recorded in document["designs"].values():
            assert recorded["cycles_per_sec"] > 0
