"""Smoke tests: the fast examples run end-to-end as subprocesses.

The slow, sweep-style examples (design_shootout, reproduce_paper,
window_design_space, quickstart at its default size) are exercised
through the experiment drivers they call; these tests run the ones that
finish in seconds exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "compiler_walkthrough.py",
    "custom_assembly.py",
    "simt_divergence.py",
    "phase_timeline.py",
    "pipeline_app.py",
]


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_small():
    result = run_example("quickstart.py", "BFS", "4", "0.1")
    assert result.returncode == 0, result.stderr
    assert "identical across designs: True" in result.stdout


def test_all_examples_present():
    expected = set(FAST_EXAMPLES) | {
        "quickstart.py", "window_design_space.py", "design_shootout.py",
        "reproduce_paper.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}


def test_compiler_walkthrough_reproduces_table1():
    result = run_example("compiler_walkthrough.py")
    assert "Table I" in result.stdout
    # The compiler column total of 2 appears in the regenerated table.
    assert "Total" in result.stdout


def test_pipeline_app_is_functionally_correct():
    result = run_example("pipeline_app.py")
    assert "[OK]" in result.stdout
    assert "WRONG" not in result.stdout


def test_custom_assembly_checks_all_designs():
    result = run_example("custom_assembly.py")
    assert "rfc" in result.stdout
    assert "reference memory image" in result.stdout
