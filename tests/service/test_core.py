"""Tests for the single-flight sweep service engine."""

import asyncio

import pytest

from repro.errors import ExperimentError, ServiceError
from repro.experiments import runner
from repro.experiments.cache import RunCache
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import (
    RunScale,
    clear_cache,
    reset_simulations_counter,
    run_design,
    set_cache,
    simulations_run,
)
from repro.service import PointSpec, SweepService, expand_points

TINY = RunScale(num_warps=2, trace_scale=0.1)
OTHER = RunScale(num_warps=2, trace_scale=0.1, memory_seed=11)
BENCHES = ("BFS", "NW")
DESIGNS = ("baseline", "bow")


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    reset_simulations_counter()
    yield
    set_cache(previous)
    clear_cache()


def grid_specs(scale=TINY):
    return expand_points(BENCHES, DESIGNS, (3,), scale)


async def submit_concurrently(service, jobs, specs, priority=0):
    return await asyncio.gather(*[
        service.submit(specs, priority=priority) for _ in range(jobs)
    ])


class TestPointSpec:
    def test_create_normalizes_case_and_window(self):
        spec = PointSpec.create("bfs", "baseline", 3, TINY)
        assert spec.benchmark == "BFS"
        assert spec.window == 0  # baseline is windowless

    def test_equal_specs_share_a_key(self):
        a = PointSpec.create("bfs", "baseline", 2, TINY)
        b = PointSpec.create("BFS", "baseline", 3, TINY)
        assert a == b
        assert a.key() == b.key()

    def test_key_matches_the_run_cache_key(self):
        from repro.experiments.cache import run_key

        spec = PointSpec.create("BFS", "bow", 3, TINY)
        assert spec.key() == run_key("BFS", "bow", 3, TINY)

    def test_unknown_design_rejected(self):
        with pytest.raises(ExperimentError):
            PointSpec.create("BFS", "quantum", 3, TINY)


class TestExpandPoints:
    def test_windowless_designs_deduplicate(self):
        specs = expand_points(("BFS",), ("baseline", "bow"), (2, 3), TINY)
        # baseline collapses to one point; bow keeps one per window.
        assert len(specs) == 3

    def test_empty_expansion_rejected(self):
        with pytest.raises(ServiceError):
            expand_points((), DESIGNS, (3,), TINY)


class TestSingleFlight:
    def test_concurrent_identical_jobs_cost_one_simulation_per_point(self):
        """The headline dedup claim: 8 concurrent clients requesting an
        identical grid execute exactly one simulation per unique point."""
        async def scenario():
            async with SweepService(cache=None) as service:
                jobs = await submit_concurrently(service, 8, grid_specs())
            return service, jobs

        service, jobs = asyncio.run(scenario())
        unique = len(grid_specs())
        assert simulations_run() == unique
        assert service.stats.simulated == unique
        assert service.stats.points_requested == 8 * unique
        assert service.stats.scheduled == unique
        # Every non-scheduled request either coalesced onto a flight or
        # hit the warm dict (possible when a batch lands between two
        # submits) — none of them scheduled new work.
        assert (service.stats.coalesced + service.stats.warm_hits
                == 7 * unique)
        for job in jobs:
            assert job.ok
            assert len(job.outcomes) == unique

    def test_all_jobs_see_identical_results(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                return await submit_concurrently(service, 4, grid_specs())

        jobs = asyncio.run(scenario())
        reference = {outcome.key: outcome.result
                     for outcome in jobs[0].outcomes}
        for job in jobs[1:]:
            for outcome in job.outcomes:
                assert outcome.result == reference[outcome.key]

    def test_results_match_run_design(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                return await service.submit(grid_specs())

        job = asyncio.run(scenario())
        clear_cache()
        for outcome in job.outcomes:
            spec = outcome.spec
            assert outcome.result == run_design(
                spec.benchmark, spec.design, spec.window or 3, TINY)

    def test_second_job_is_served_from_the_warm_dict(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                await service.submit(grid_specs())
                before = simulations_run()
                job = await service.submit(grid_specs())
            return before, job, service

        before, job, service = asyncio.run(scenario())
        assert simulations_run() == before
        assert all(outcome.source == "warm" for outcome in job.outcomes)
        assert service.stats.warm_hits == len(job.outcomes)

    def test_duplicate_points_within_a_job_collapse(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                return await service.submit(
                    [PointSpec.create("BFS", "baseline", 2, TINY),
                     PointSpec.create("bfs", "baseline", 3, TINY)])

        job = asyncio.run(scenario())
        assert len(job.outcomes) == 1
        assert simulations_run() == 1


class TestBatching:
    def test_concurrent_jobs_share_a_batch(self):
        async def scenario():
            async with SweepService(cache=None,
                                    batch_window=0.05) as service:
                await submit_concurrently(service, 8, grid_specs())
            return service

        service = asyncio.run(scenario())
        assert service.stats.batches == 1

    def test_mixed_scales_split_into_batches(self):
        async def scenario():
            async with SweepService(cache=None,
                                    batch_window=0.05) as service:
                job = await service.submit(
                    grid_specs(TINY) + grid_specs(OTHER))
            return service, job

        service, job = asyncio.run(scenario())
        assert job.ok
        assert len(job.outcomes) == 2 * len(grid_specs())
        assert service.stats.batches == 2

    def test_max_batch_bounds_each_grid_call(self):
        async def scenario():
            async with SweepService(cache=None, max_batch=1,
                                    batch_window=0.05) as service:
                await service.submit(grid_specs())
            return service

        service = asyncio.run(scenario())
        assert service.stats.batches == len(grid_specs())

    def test_priority_orders_dispatch(self, monkeypatch):
        order = []
        real_execute = runner.execute_run

        def tracking_execute(benchmark, design, *args, **kwargs):
            order.append((benchmark.upper(), design))
            return real_execute(benchmark, design, *args, **kwargs)

        monkeypatch.setattr(runner, "execute_run", tracking_execute)

        async def scenario():
            # batch_window long enough that both submissions land
            # before the dispatcher cuts its first batch; max_batch=1
            # makes the drain order observable.
            async with SweepService(cache=None, max_batch=1,
                                    batch_window=0.2) as service:
                low = asyncio.ensure_future(service.submit(
                    [PointSpec.create("BFS", "baseline", 3, TINY)],
                    priority=5))
                await asyncio.sleep(0)  # enqueue low before high
                high = asyncio.ensure_future(service.submit(
                    [PointSpec.create("NW", "baseline", 3, TINY)],
                    priority=0))
                await asyncio.gather(low, high)

        asyncio.run(scenario())
        assert order == [("NW", "baseline"), ("BFS", "baseline")]


class TestDiskCacheLayer:
    def test_restart_costs_disk_reads_not_simulations(self, tmp_path):
        cache = RunCache(tmp_path / "runs")

        async def first():
            async with SweepService(cache=cache) as service:
                await service.submit(grid_specs())

        asyncio.run(first())
        assert simulations_run() == len(grid_specs())
        clear_cache()  # a fresh process: empty memo, same disk cache

        async def second():
            async with SweepService(cache=RunCache(tmp_path /
                                                   "runs")) as service:
                job = await service.submit(grid_specs())
            return service, job

        service, job = asyncio.run(second())
        assert simulations_run() == len(grid_specs())  # unchanged
        assert service.stats.simulated == 0
        assert service.stats.from_cache == len(grid_specs())
        assert all(outcome.source == "cache" for outcome in job.outcomes)


class TestFailures:
    def test_every_waiter_sees_the_same_failure(self, monkeypatch):
        real_execute = runner.execute_run

        def failing_execute(benchmark, design, *args, **kwargs):
            if benchmark.upper() == "BFS" and design == "bow":
                raise ValueError("injected permanent failure")
            return real_execute(benchmark, design, *args, **kwargs)

        monkeypatch.setattr(runner, "execute_run", failing_execute)

        async def scenario():
            async with SweepService(
                    cache=None,
                    retry=RetryPolicy(max_attempts=1)) as service:
                jobs = await submit_concurrently(service, 3, grid_specs())
            return service, jobs

        service, jobs = asyncio.run(scenario())
        for job in jobs:
            assert not job.ok
            assert job.failed == 1
            failed = [o for o in job.outcomes if not o.ok]
            assert failed[0].spec.design == "bow"
            assert failed[0].error_type == "SweepPointError"
            assert "injected permanent failure" in failed[0].error
        # The healthy points still resolved for everyone.
        for job in jobs:
            assert sum(1 for o in job.outcomes if o.ok) == 3
        assert service.stats.failures >= 1

    def test_failed_key_leaves_the_registry_so_a_retry_can_heal(
            self, monkeypatch):
        real_execute = runner.execute_run
        state = {"fail": True}

        def flaky_execute(benchmark, design, *args, **kwargs):
            if state["fail"] and design == "bow":
                raise ValueError("transient-looking failure")
            return real_execute(benchmark, design, *args, **kwargs)

        monkeypatch.setattr(runner, "execute_run", flaky_execute)
        spec = PointSpec.create("BFS", "bow", 3, TINY)

        async def scenario():
            async with SweepService(
                    cache=None,
                    retry=RetryPolicy(max_attempts=1)) as service:
                first = await service.submit([spec])
                state["fail"] = False
                second = await service.submit([spec])
            return first, second, service

        first, second, service = asyncio.run(scenario())
        assert not first.ok
        assert second.ok
        assert service.inflight_points == 0

    def test_submit_without_start_raises(self):
        async def scenario():
            await SweepService().submit(grid_specs())

        with pytest.raises(ServiceError):
            asyncio.run(scenario())

    def test_empty_job_rejected(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                await service.submit([])

        with pytest.raises(ServiceError):
            asyncio.run(scenario())

    def test_bad_configuration_rejected(self):
        with pytest.raises(ServiceError):
            SweepService(max_batch=0)
        with pytest.raises(ServiceError):
            SweepService(batch_window=-1.0)


class TestTelemetry:
    def test_per_job_streams_and_stamped_service_stream(self, tmp_path):
        import json

        from repro.observe.telemetry import TelemetryWriter

        service_stream = TelemetryWriter(str(tmp_path / "service.jsonl"))

        async def scenario():
            async with SweepService(
                    cache=None, telemetry=service_stream,
                    telemetry_dir=str(tmp_path / "jobs")) as service:
                await service.submit(grid_specs())
                await service.submit(grid_specs())

        asyncio.run(scenario())
        service_stream.close()

        job_files = sorted((tmp_path / "jobs").glob("job-*.jsonl"))
        assert [path.name for path in job_files] == [
            "job-0001.jsonl", "job-0002.jsonl"]
        first = [json.loads(line) for line in
                 job_files[0].read_text(encoding="utf-8").splitlines()]
        assert first[0]["type"] == "job-start"
        assert first[-1]["type"] == "job-summary"
        points = [r for r in first if r["type"] == "job-point"]
        assert len(points) == len(grid_specs())
        assert all(r["source"] == "sim" for r in points)

        combined = [json.loads(line) for line in
                    (tmp_path / "service.jsonl")
                    .read_text(encoding="utf-8").splitlines()]
        # Every job record is stamped with its job id; batch records
        # come from the dispatcher and carry none.
        jobs_seen = {r["job"] for r in combined if "job" in r}
        assert jobs_seen == {1, 2}
        batches = [r for r in combined if r["type"] == "batch"]
        assert len(batches) == 1
        assert batches[0]["simulated"] == len(grid_specs())
