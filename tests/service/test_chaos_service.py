"""Unit tests for the chaos-serve drill's plumbing.

The full kill/recover/drain drill runs real subprocesses and lives in
the CI ``service-chaos`` job (``python -m repro chaos-serve``); these
tests pin the driver's helpers so a refactor cannot silently break the
drill's arithmetic.
"""

import os
import socket

import pytest

from repro.experiments.runner import RunScale
from repro.testing import chaos_service


def test_free_port_is_bindable():
    port = chaos_service._free_port()
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", port))


def test_child_env_makes_repro_importable():
    import repro

    env = chaos_service._child_env()
    root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    assert env["PYTHONPATH"].split(os.pathsep)[0] == root


def test_sweep_points_cover_the_kill_grid():
    points = chaos_service._sweep_points()
    assert len(points) == 4
    assert ["BFS", "bow", 3] in points
    # The victim point must be in the grid or the kill never fires.
    assert chaos_service.VICTIM == "BFS/bow IW3"


def test_sweep_and_loadgen_grids_never_share_cache_keys():
    """The recovery arithmetic depends on the killed sweep's points
    being disjoint from the loadgen's (different RunScale)."""
    assert chaos_service.SWEEP_SCALE != RunScale(num_warps=4,
                                                trace_scale=0.1)


def test_scale_payload_round_trips():
    payload = chaos_service._scale_payload(chaos_service.SWEEP_SCALE)
    assert RunScale(**payload) == chaos_service.SWEEP_SCALE


def test_check_failure_exits_nonzero():
    chaos_service._check(True, "fine")
    with pytest.raises(SystemExit):
        chaos_service._check(False, "doomed")


def test_fail_returns_exit_code():
    assert chaos_service._fail("boom") == 1


def test_main_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        chaos_service.main(["--scenario", "armageddon"])


class TestRunDispatcher:
    """``run()`` scratch-directory lifecycle, with the scenarios
    themselves stubbed out (the real ones run subprocesses in CI)."""

    def test_success_removes_the_temp_scratch_dir(self, monkeypatch):
        seen = []
        monkeypatch.setattr(chaos_service, "_scenario_recovery",
                            seen.append)
        monkeypatch.setattr(chaos_service, "_scenario_overload",
                            seen.append)
        assert chaos_service.run() == 0
        assert len(seen) == 2
        assert seen[0] == seen[1]  # both scenarios share one root
        assert not seen[0].exists()

    def test_explicit_root_implies_keep(self, monkeypatch, tmp_path):
        monkeypatch.setattr(chaos_service, "_scenario_overload",
                            lambda root: None)
        root = tmp_path / "artifacts"
        rc = chaos_service.main(["--scenario", "overload",
                                 "--root", str(root)])
        assert rc == 0
        assert root.is_dir()

    def test_failed_check_keeps_the_scratch_dir(self, monkeypatch):
        roots = []

        def doomed(root):
            roots.append(root)
            chaos_service._check(False, "injected failure")

        monkeypatch.setattr(chaos_service, "_scenario_recovery", doomed)
        assert chaos_service.run(scenario="recovery") == 1
        assert roots[0].exists()
        import shutil

        shutil.rmtree(roots[0], ignore_errors=True)

    def test_keep_flag_preserves_the_temp_dir(self, monkeypatch):
        roots = []
        monkeypatch.setattr(chaos_service, "_scenario_recovery",
                            roots.append)
        assert chaos_service.run(scenario="recovery", keep=True) == 0
        assert roots[0].exists()
        import shutil

        shutil.rmtree(roots[0], ignore_errors=True)
