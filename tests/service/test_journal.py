"""Tests for the crash-safe write-ahead job journal."""

import json

import pytest

from repro.service import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalDegradedWarning,
    read_records,
    replay,
)


def make_journal(tmp_path, **kwargs) -> Journal:
    return Journal(tmp_path / "journal.jsonl", **kwargs)


class TestJournalWrites:
    def test_records_land_as_schema_stamped_jsonl(self, tmp_path):
        with make_journal(tmp_path) as journal:
            journal.record("service-start", incarnation=1)
            journal.record("job-accepted", job=1, points=2)
        records, corrupt = read_records(journal.path)
        assert corrupt == 0
        assert [r["type"] for r in records] == ["service-start",
                                                "job-accepted"]
        assert all(r["schema"] == JOURNAL_SCHEMA_VERSION for r in records)
        assert records[1]["points"] == 2

    def test_append_across_incarnations(self, tmp_path):
        with make_journal(tmp_path) as journal:
            journal.record("service-start", incarnation=1)
        with make_journal(tmp_path) as journal:
            journal.record("service-start", incarnation=2)
        records, _ = read_records(journal.path)
        assert [r["incarnation"] for r in records] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        records, corrupt = read_records(tmp_path / "nope.jsonl")
        assert records == [] and corrupt == 0

    def test_write_errors_self_disable_with_one_warning(self, tmp_path,
                                                        monkeypatch):
        journal = make_journal(tmp_path, error_threshold=2).open()

        def boom(self, text):
            raise OSError("disk full")

        monkeypatch.setattr(Journal, "_write_line", boom)
        journal.record("job-accepted", job=1)  # swallowed, under threshold
        assert not journal.disabled
        with pytest.warns(JournalDegradedWarning):
            journal.record("job-accepted", job=2)
        assert journal.disabled
        assert journal.write_errors == 2
        journal.record("job-accepted", job=3)  # no-op once disabled
        assert journal.write_errors == 2
        journal.close()


class TestCorruptionTolerance:
    def test_torn_tail_and_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps({"schema": 1, "type": "job-accepted", "job": 1})
        path.write_text(
            good + "\n"
            + "not json at all\n"
            + json.dumps(["a", "list"]) + "\n"
            + json.dumps({"no": "type field"}) + "\n"
            + good[: len(good) // 2],  # torn tail from a crash mid-write
            encoding="utf-8")
        records, corrupt = read_records(path)
        assert len(records) == 1
        assert corrupt == 4

    def test_replay_counts_corruption_without_failing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("garbage\n", encoding="utf-8")
        state = replay(path)
        assert state.corrupt_lines == 1
        assert not state.needs_recovery


def write_journal(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps({"schema": 1, **record}) + "\n")


POINT = {"benchmark": "BFS", "design": "bow", "window": 3,
         "scale": {"num_warps": 2, "trace_scale": 0.1,
                   "memory_seed": 7, "num_sms": 1}}


class TestReplay:
    def test_resolved_points_do_not_need_recovery(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [
            {"type": "service-start", "incarnation": 1},
            {"type": "job-accepted", "job": 1},
            {"type": "point-scheduled", "key": "k1", **POINT},
            {"type": "point-resolved", "key": "k1", "ok": True,
             "source": "sim"},
            {"type": "job-finished", "job": 1},
        ])
        state = replay(path)
        assert not state.needs_recovery
        assert state.unfinished_jobs == []
        assert state.resolved == 1
        assert state.resolved_sims == 1
        assert state.incarnations == 1

    def test_scheduled_but_unresolved_points_surface(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [
            {"type": "service-start", "incarnation": 1},
            {"type": "job-accepted", "job": 1},
            {"type": "point-scheduled", "key": "k1", **POINT},
            {"type": "point-scheduled", "key": "k2", **POINT},
            {"type": "point-resolved", "key": "k1", "ok": True,
             "source": "cache"},
        ])
        state = replay(path)
        assert state.needs_recovery
        assert set(state.unresolved_points) == {"k2"}
        assert state.unresolved_points["k2"]["benchmark"] == "BFS"
        assert state.unfinished_jobs == [(1, 1)]

    def test_last_event_wins_on_reschedule(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [
            {"type": "point-scheduled", "key": "k1", **POINT},
            {"type": "point-resolved", "key": "k1", "ok": False,
             "source": "failed"},
            {"type": "point-scheduled", "key": "k1", **POINT},
        ])
        state = replay(path)
        assert set(state.unresolved_points) == {"k1"}

    def test_unknown_record_types_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [
            {"type": "service-start", "incarnation": 1},
            {"type": "from-the-future", "payload": 1},
        ])
        state = replay(path)
        assert state.incarnations == 1
        assert not state.needs_recovery

    def test_jobs_tracked_per_incarnation(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_journal(path, [
            {"type": "service-start", "incarnation": 1},
            {"type": "job-accepted", "job": 1},
            {"type": "service-start", "incarnation": 2},
            {"type": "job-accepted", "job": 1},
            {"type": "job-finished", "job": 1},
        ])
        state = replay(path)
        # Incarnation 2 finished *its* job 1; incarnation 1's is owed.
        assert state.unfinished_jobs == [(1, 1)]
        assert state.incarnations == 2
