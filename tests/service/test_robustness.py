"""Robustness tests: admission control, deadlines, drain, recovery.

Covers the production-hardening layer of the sweep service — the
pieces a happy-path test never exercises: load shedding with
``retry_after_ms`` hints, job deadlines expiring queued points, the
close/drain state machine resolving every pending waiter, journal
replay after a crash, and the wire layer surviving clients that
vanish mid-response.
"""

import asyncio
import heapq
import json
import socket
import struct
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.experiments import runner
from repro.experiments.cache import RunCache
from repro.experiments.resilience import RetryPolicy
from repro.experiments.runner import (
    RunScale,
    clear_cache,
    reset_simulations_counter,
    set_cache,
    simulations_run,
)
from repro.service import (
    PointSpec,
    ServiceClient,
    SweepServer,
    SweepService,
    read_records,
    replay,
    run_loadgen,
)
from repro.service.core import (
    MAX_RETRY_AFTER_MS,
    MIN_RETRY_AFTER_MS,
    _Queued,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)
OTHER = RunScale(num_warps=2, trace_scale=0.1, memory_seed=11)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    reset_simulations_counter()
    yield
    set_cache(previous)
    clear_cache()


def spec(benchmark="BFS", design="bow", window=3, scale=TINY):
    return PointSpec.create(benchmark, design, window, scale)


def slow_execute(monkeypatch, seconds, only_design=None):
    """Make simulations slow so queue states become observable."""
    real_execute = runner.execute_run

    def slowed(benchmark, design, *args, **kwargs):
        if only_design is None or design == only_design:
            time.sleep(seconds)
        return real_execute(benchmark, design, *args, **kwargs)

    monkeypatch.setattr(runner, "execute_run", slowed)


class TestCloseResolvesWaiters:
    """Satellite regression: close() must never strand a waiter."""

    def test_close_with_queued_waiters_returns_instead_of_hanging(self):
        async def scenario():
            # A batch window far longer than the test: the points stay
            # queued forever unless close() resolves them.
            service = await SweepService(cache=None,
                                         batch_window=30.0).start()
            job_task = asyncio.ensure_future(
                service.submit([spec(), spec("NW")]))
            await asyncio.sleep(0.05)
            await service.close()
            return await asyncio.wait_for(job_task, timeout=2.0)

        job = asyncio.run(scenario())
        assert len(job.outcomes) == 2
        assert not job.ok
        for outcome in job.outcomes:
            assert outcome.error_type == "ServiceError"
            assert "service closed" in outcome.error
        assert simulations_run() == 0

    def test_close_mid_batch_resolves_waiters(self, monkeypatch):
        slow_execute(monkeypatch, 0.3)

        async def scenario():
            service = await SweepService(cache=None,
                                         batch_window=0.0).start()
            job_task = asyncio.ensure_future(service.submit([spec()]))
            await asyncio.sleep(0.1)  # batch dispatched, simulating
            await service.close()
            return await asyncio.wait_for(job_task, timeout=5.0)

        job = asyncio.run(scenario())
        assert not job.ok
        assert "service closed" in job.outcomes[0].error

    def test_double_close_is_idempotent(self, tmp_path):
        async def scenario():
            service = await SweepService(
                cache=None, journal=tmp_path / "journal.jsonl").start()
            await service.submit([spec()])
            await service.close()
            await service.close()
            return service

        service = asyncio.run(scenario())
        records, _ = read_records(tmp_path / "journal.jsonl")
        stops = [r for r in records if r["type"] == "service-stop"]
        assert len(stops) == 1
        assert service.stats.jobs == 1


class TestAdmissionControl:
    def test_queue_bound_sheds_with_retry_hint(self):
        async def scenario():
            service = await SweepService(cache=None, batch_window=0.3,
                                         max_queued_points=2).start()
            first = asyncio.ensure_future(
                service.submit([spec(), spec("NW")]))
            await asyncio.sleep(0.05)  # both points queued, none cut yet
            with pytest.raises(ServiceOverloadedError) as excinfo:
                await service.submit([spec("SAD"), spec("STO")])
            job = await first
            await service.close()
            return service, excinfo.value, job

        service, error, job = asyncio.run(scenario())
        assert MIN_RETRY_AFTER_MS <= error.retry_after_ms <= \
            MAX_RETRY_AFTER_MS
        assert service.stats.overloaded == 1
        assert job.ok  # the admitted job was unaffected by the shed one

    def test_inflight_jobs_bound_sheds_whole_jobs(self):
        async def scenario():
            service = await SweepService(cache=None, batch_window=0.2,
                                         max_inflight_jobs=1).start()
            first = asyncio.ensure_future(service.submit([spec()]))
            await asyncio.sleep(0.05)
            with pytest.raises(ServiceOverloadedError):
                await service.submit([spec("NW")])
            job = await first
            await service.close()
            return service, job

        service, job = asyncio.run(scenario())
        assert job.ok
        assert service.stats.overloaded == 1

    def test_warm_points_do_not_count_against_the_queue_bound(self):
        async def scenario():
            async with SweepService(cache=None,
                                    max_queued_points=1) as service:
                await service.submit([spec()])
                # spec() is warm now; only spec("NW") is a new point,
                # so this fits the 1-point queue bound.
                return await service.submit([spec(), spec("NW")])

        job = asyncio.run(scenario())
        assert job.ok
        assert len(job.outcomes) == 2

    def test_shed_job_leaves_no_trace(self):
        """Admission is atomic: a shed job must not leak queue entries
        or in-flight registrations that would poison later submits."""
        async def scenario():
            service = await SweepService(cache=None, batch_window=0.3,
                                         max_queued_points=1).start()
            first = asyncio.ensure_future(service.submit([spec()]))
            await asyncio.sleep(0.05)
            with pytest.raises(ServiceOverloadedError):
                await service.submit([spec("NW"), spec("SAD")])
            assert service.inflight_points == 1  # only the first job's
            assert service.queued_points == 1
            job = await first
            # Capacity freed: the formerly-shed points are admitted.
            retried = await service.submit([spec("NW")])
            await service.close()
            return job, retried

        job, retried = asyncio.run(scenario())
        assert job.ok and retried.ok

    def test_bad_bounds_rejected(self):
        with pytest.raises(ServiceError):
            SweepService(max_queued_points=0)
        with pytest.raises(ServiceError):
            SweepService(max_inflight_jobs=0)

    def test_retry_after_stays_in_bounds(self):
        service = SweepService(cache=None)
        assert MIN_RETRY_AFTER_MS <= service.retry_after_ms() <= \
            MAX_RETRY_AFTER_MS


class TestDeadlines:
    def test_expired_points_never_simulate_but_siblings_complete(
            self, monkeypatch):
        slow_execute(monkeypatch, 0.5)

        async def scenario():
            # max_batch=1 + no window: the first point dispatches
            # immediately and pins the (1-worker) executor for 0.5 s,
            # far past the 150 ms deadline of its queued siblings.
            service = await SweepService(cache=None, batch_window=0.0,
                                         max_batch=1).start()
            job = await service.submit(
                [spec(), spec("NW"), spec("SAD")], deadline_ms=150)
            await service.close()
            return service, job

        service, job = asyncio.run(scenario())
        by_bench = {o.spec.benchmark: o for o in job.outcomes}
        assert by_bench["BFS"].ok  # dispatched points run to completion
        for bench in ("NW", "SAD"):
            outcome = by_bench[bench]
            assert not outcome.ok
            assert outcome.source == "expired"
            assert outcome.error_type == ServiceTimeoutError.__name__
            assert "deadline" in outcome.error
        assert simulations_run() == 1
        assert service.stats.expired == 2
        assert service.inflight_points == 0

    def test_expired_key_can_be_rescheduled_later(self):
        async def scenario():
            service = await SweepService(cache=None,
                                         batch_window=0.5).start()
            first = await service.submit([spec()], deadline_ms=50)
            second = await service.submit([spec()])
            await service.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert not first.ok
        assert first.outcomes[0].source == "expired"
        assert second.ok

    def test_nonpositive_deadline_rejected(self):
        async def scenario():
            async with SweepService(cache=None) as service:
                await service.submit([spec()], deadline_ms=0)

        with pytest.raises(ServiceError):
            asyncio.run(scenario())


class TestDrain:
    def test_drain_finishes_accepted_work_and_sheds_new_jobs(self):
        async def scenario():
            service = await SweepService(cache=None,
                                         batch_window=0.1).start()
            accepted = asyncio.ensure_future(
                service.submit([spec(), spec("NW")]))
            await asyncio.sleep(0.02)
            drain_task = asyncio.ensure_future(service.drain(timeout=30.0))
            await asyncio.sleep(0.01)
            assert service.draining
            with pytest.raises(ServiceOverloadedError):
                await service.submit([spec("SAD")])
            job = await accepted
            drained = await drain_task
            return service, job, drained

        service, job, drained = asyncio.run(scenario())
        assert drained is True
        assert job.ok  # accepted before drain, finished during it
        assert service.stats.overloaded == 1

    def test_drain_timeout_force_closes(self, monkeypatch):
        slow_execute(monkeypatch, 0.8)

        async def scenario():
            service = await SweepService(cache=None,
                                         batch_window=0.0).start()
            job_task = asyncio.ensure_future(service.submit([spec()]))
            await asyncio.sleep(0.05)
            drained = await service.drain(timeout=0.1)
            job = await asyncio.wait_for(job_task, timeout=5.0)
            return drained, job

        drained, job = asyncio.run(scenario())
        assert drained is False
        assert not job.ok
        assert "service closed" in job.outcomes[0].error

    def test_drain_of_idle_service_is_immediate(self):
        async def scenario():
            service = await SweepService(cache=None).start()
            return await service.drain(timeout=5.0)

        assert asyncio.run(scenario()) is True


class TestJournaledRecovery:
    def test_lifecycle_stamps_incarnations(self, tmp_path):
        path = tmp_path / "journal.jsonl"

        async def session():
            async with SweepService(cache=None, journal=path) as service:
                await service.submit([spec()])

        asyncio.run(session())
        state = replay(path)
        assert state.incarnations == 1
        assert state.resolved == 1
        assert not state.needs_recovery
        asyncio.run(session())
        assert replay(path).incarnations == 2

    def test_recover_replays_owed_points_without_resimulating(
            self, tmp_path):
        """The crash-recovery contract: points the journal shows as
        scheduled-but-unresolved are resubmitted, and work that already
        landed in the RunCache is answered from disk — only the
        genuinely interrupted point simulates."""
        cache_dir = tmp_path / "runs"
        finished, interrupted = spec(), spec("NW")

        async def before_crash():
            async with SweepService(cache=RunCache(cache_dir)) as service:
                await service.submit([finished])

        asyncio.run(before_crash())
        assert simulations_run() == 1
        clear_cache()  # the "crash": a fresh process keeps only disk
        reset_simulations_counter()

        # The journal a SIGKILLed service leaves behind: both points
        # scheduled, neither resolved, the job never finished.
        path = tmp_path / "journal.jsonl"
        records = [{"type": "service-start", "incarnation": 1},
                   {"type": "job-accepted", "job": 1, "points": 2}]
        for point in (finished, interrupted):
            records.append({
                "type": "point-scheduled", "job": 1, "key": point.key(),
                "benchmark": point.benchmark, "design": point.design,
                "window": point.window,
                "scale": {"num_warps": point.scale.num_warps,
                          "trace_scale": point.scale.trace_scale,
                          "memory_seed": point.scale.memory_seed,
                          "num_sms": point.scale.num_sms}})
        path.write_text("".join(json.dumps({"schema": 1, **r}) + "\n"
                                for r in records), encoding="utf-8")

        async def restart():
            async with SweepService(cache=RunCache(cache_dir),
                                    journal=path) as service:
                assert service.journal_state.needs_recovery
                report = await service.recover()
                return service, report

        service, report = asyncio.run(restart())
        assert report.unfinished_jobs == 1
        assert report.unresolved_points == 2
        assert report.replayed == 2
        assert report.failed == 0 and report.skipped == 0
        assert service.stats.recovered_jobs == 1
        assert service.stats.recovered_points == 2
        assert simulations_run() == 1  # only the interrupted point
        assert service.stats.from_cache == 1
        assert not replay(path).needs_recovery  # recovery was journaled

    def test_recover_skips_unreconstructible_points(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({
            "schema": 1, "type": "point-scheduled", "key": "k1",
            "benchmark": "BFS", "design": "warp-drive", "window": 3,
            "scale": {"num_warps": 2}}) + "\n", encoding="utf-8")

        async def restart():
            async with SweepService(cache=None, journal=path) as service:
                return await service.recover()

        report = asyncio.run(restart())
        assert report.skipped == 1
        assert report.replayed == 0

    def test_recover_requires_a_running_service(self):
        with pytest.raises(ServiceError):
            asyncio.run(SweepService(cache=None).recover())


def push_entry(service, loop, point, priority, state="queued"):
    entry = _Queued(point, point.key(), loop.create_future())
    entry.state = state
    service._seq += 1
    if state == "queued":
        service._queued_count += 1
    heapq.heappush(service._queue, (priority, service._seq, entry))
    return entry


class TestQueueOrderingProperties:
    """Property tests for the dispatch order invariants."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(priorities=st.lists(st.integers(-3, 3), min_size=1,
                               max_size=40))
    def test_batches_drain_by_priority_then_fifo(self, priorities):
        async def scenario():
            service = SweepService(cache=None, max_batch=len(priorities))
            loop = asyncio.get_running_loop()
            entries = [push_entry(service, loop, spec(), priority)
                       for priority in priorities]
            return entries, service._pop_batch()

        entries, batch = asyncio.run(scenario())
        expected = [entry for _, entry in
                    sorted(enumerate(entries),
                           key=lambda item: (priorities[item[0]], item[0]))]
        assert batch == expected
        assert all(entry.state == "dispatched" for entry in batch)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(expired=st.lists(st.booleans(), min_size=1, max_size=30))
    def test_expired_entries_never_dispatch(self, expired):
        async def scenario():
            service = SweepService(cache=None, max_batch=len(expired))
            loop = asyncio.get_running_loop()
            entries = [push_entry(service, loop, spec(), 0,
                                  state="expired" if gone else "queued")
                       for gone in expired]
            return entries, service._pop_batch()

        entries, batch = asyncio.run(scenario())
        live = [entry for entry, gone in zip(entries, expired) if not gone]
        assert batch == live  # FIFO among survivors, no expired entry

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(scales=st.lists(st.booleans(), min_size=1, max_size=20))
    def test_batches_cut_at_scale_boundaries(self, scales):
        async def scenario():
            service = SweepService(cache=None, max_batch=len(scales))
            loop = asyncio.get_running_loop()
            entries = [push_entry(service, loop,
                                  spec(scale=OTHER if other else TINY), 0)
                       for other in scales]
            return entries, service._pop_batch()

        entries, batch = asyncio.run(scenario())
        first_scale = entries[0].spec.scale
        assert all(entry.spec.scale == first_scale for entry in batch)
        assert len(batch) == sum(
            1 for entry in entries if entry.spec.scale == first_scale)


class TestWireDisconnects:
    """Satellite: clients vanishing mid-response are counted, never
    fatal, and never take the service down with them."""

    def test_aborted_client_is_counted_and_server_survives(self):
        async def scenario():
            async with SweepServer(SweepService(cache=None)) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(json.dumps({
                    "op": "sweep", "points": [["BFS", "bow", 3]],
                    "scale": {"num_warps": 2, "trace_scale": 0.1},
                }).encode() + b"\n")
                await writer.drain()
                await asyncio.sleep(0.02)  # let the server read it
                # A plain close would FIN politely and the response
                # write would succeed; SO_LINGER 0 turns the abort
                # into a hard RST, the "client process died" case.
                sock = writer.get_extra_info("socket")
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                writer.transport.abort()

                deadline = asyncio.get_running_loop().time() + 10.0
                async with ServiceClient(port=server.port) as client:
                    while True:
                        stats = (await client.stats())["stats"]
                        if stats["disconnects"] >= 1:
                            break
                        assert asyncio.get_running_loop().time() < \
                            deadline, "disconnect never counted"
                        await asyncio.sleep(0.05)
                    # The survivor still gets full service, and the
                    # aborted client's job completed server-side.
                    follow_up = await client.sweep(
                        points=[["BFS", "bow", 3]], scale=TINY)
                return stats, follow_up

        stats, follow_up = asyncio.run(scenario())
        assert stats["disconnects"] >= 1
        assert follow_up["ok"]
        assert follow_up["points"][0]["source"] in ("warm", "flight")
        assert simulations_run() == 1

    def test_overloaded_wire_response_and_resilient_client(self):
        async def scenario():
            service = SweepService(cache=None, batch_window=0.4,
                                   max_queued_points=1)
            async with SweepServer(service) as server:
                async with ServiceClient(port=server.port) as first:
                    filling = asyncio.ensure_future(first.sweep(
                        points=[["BFS", "bow", 3]], scale=TINY))
                    await asyncio.sleep(0.05)
                    # A strict client sees the typed shed response...
                    async with ServiceClient(port=server.port) as strict:
                        shed = await strict.sweep(
                            points=[["NW", "bow", 3]], scale=TINY)
                    # ...a resilient one backs off and lands the job.
                    retry = ServiceClient(
                        port=server.port,
                        retry=RetryPolicy(max_attempts=8,
                                          backoff_base=0.1))
                    await retry.connect()
                    try:
                        healed = await retry.sweep(
                            points=[["NW", "bow", 3]], scale=TINY)
                    finally:
                        await retry.close()
                    filled = await filling
                return service, shed, healed, filled

        service, shed, healed, filled = asyncio.run(scenario())
        assert not shed["ok"]
        assert shed["error_type"] == "ServiceOverloadedError"
        assert shed["retry_after_ms"] >= MIN_RETRY_AFTER_MS
        assert healed["ok"] and filled["ok"]
        assert service.stats.overloaded >= 1

    def test_drain_mode_shutdown_finishes_inflight_work(self):
        async def scenario():
            server = SweepServer(SweepService(cache=None,
                                              batch_window=0.2))
            await server.start()
            waiter = asyncio.ensure_future(server.serve_until_shutdown())
            async with ServiceClient(port=server.port) as sweeper:
                inflight = asyncio.ensure_future(sweeper.sweep(
                    points=[["BFS", "bow", 3]], scale=TINY))
                await asyncio.sleep(0.05)
                async with ServiceClient(port=server.port) as control:
                    ack = await control.shutdown(mode="drain",
                                                 drain_timeout=30.0)
                swept = await inflight
            await asyncio.wait_for(waiter, timeout=5.0)
            await server.close()
            return ack, swept

        ack, swept = asyncio.run(scenario())
        assert ack["ok"] and ack["mode"] == "drain"
        assert ack["drained"] is True
        assert swept["ok"]  # accepted before the drain, so it finished


class ServerThread:
    """A sweep server on a background thread (mirrors test_server)."""

    def __init__(self):
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "server did not shut down"

    def _run(self):
        async def main():
            server = SweepServer(SweepService(cache=None))
            await server.start()
            self.port = server.port
            self._ready.set()
            try:
                await server.serve_until_shutdown()
            finally:
                await server.close()

        asyncio.run(main())


def churn_connections(port, rounds):
    """Clients killed mid-stream: write half a request line, then RST
    the socket (SO_LINGER 0) so the server's pending read hits a dead
    peer mid-request."""
    partial = json.dumps({
        "op": "sweep", "points": [["BFS", "bow", 3]],
        "scale": {"num_warps": 2, "trace_scale": 0.1, "memory_seed": 11},
    }).encode()[:20]  # no trailing newline: the request never completes
    for _ in range(rounds):
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.sendall(partial)
            time.sleep(0.05)
        finally:
            sock.close()


class TestLoadgenUnderChurn:
    def test_dedup_survives_connection_churn(self):
        """Satellite: run_loadgen's single-flight claim must hold while
        other clients are being killed mid-request — every churned
        connection costs the server a disconnect, and none of it may
        disturb the dedup accounting."""
        with ServerThread() as running:
            churn = threading.Thread(
                target=churn_connections, args=(running.port, 6))
            churn.start()
            try:
                report = run_loadgen(
                    port=running.port, clients=4,
                    benchmarks=("BFS", "NW"), designs=("baseline", "bow"),
                    windows=(3,), scale=TINY, shutdown=False)
            finally:
                churn.join(timeout=30.0)
            assert not churn.is_alive()

            async def finish():
                async with ServiceClient(port=running.port) as client:
                    stats = (await client.stats())["stats"]
                    await client.shutdown()
                    return stats

            stats = asyncio.run(finish())

        assert report["single_flight"]["dedup_ok"]
        assert report["unique_points"] == 4
        assert stats["disconnects"] >= 1
        # The loadgen grid simulated exactly once per unique point;
        # the churned connections never cost a simulation.
        assert stats["simulated"] == report["unique_points"]
