"""Tests for the JSONL-over-TCP wire layer and the load generator."""

import asyncio
import json
import threading

import pytest

from repro.errors import ServiceError
from repro.experiments.runner import (
    RunScale,
    clear_cache,
    reset_simulations_counter,
    set_cache,
    simulations_run,
)
from repro.service import (
    ServiceClient,
    SweepServer,
    SweepService,
    format_report,
    parse_scale,
    parse_sweep_specs,
    run_loadgen,
)

TINY = RunScale(num_warps=2, trace_scale=0.1)
SCALE_WIRE = {"num_warps": 2, "trace_scale": 0.1}


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    previous = set_cache(None)
    reset_simulations_counter()
    yield
    set_cache(previous)
    clear_cache()


class TestParsing:
    def test_parse_scale_defaults(self):
        assert parse_scale(None) == RunScale()
        assert parse_scale({}) == RunScale()

    def test_parse_scale_fields(self):
        scale = parse_scale({"num_warps": 2, "trace_scale": 0.1,
                             "num_sms": 2})
        assert scale == RunScale(num_warps=2, trace_scale=0.1, num_sms=2)

    def test_parse_scale_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            parse_scale({"num_warps": 2, "warp_speed": 9})

    def test_parse_sweep_cross_product(self):
        specs = parse_sweep_specs({
            "op": "sweep", "benchmarks": ["bfs"], "designs": ["bow"],
            "windows": [3], "scale": SCALE_WIRE})
        assert len(specs) == 1
        assert specs[0].benchmark == "BFS"

    def test_parse_sweep_explicit_points(self):
        specs = parse_sweep_specs({
            "op": "sweep",
            "points": [["BFS", "bow", 3], ["bfs", "bow", "3"],
                       ["NW", "baseline", 2]],
            "scale": SCALE_WIRE})
        assert len(specs) == 2  # duplicate collapses

    def test_parse_sweep_rejects_shapeless_requests(self):
        with pytest.raises(ServiceError):
            parse_sweep_specs({"op": "sweep"})
        with pytest.raises(ServiceError):
            parse_sweep_specs({"op": "sweep", "points": []})
        with pytest.raises(ServiceError):
            parse_sweep_specs({"op": "sweep", "points": [["BFS", "bow"]]})


def with_server(coroutine_factory):
    """Run ``coroutine_factory(server)`` against an in-process server."""
    async def scenario():
        async with SweepServer(SweepService(cache=None)) as server:
            return await coroutine_factory(server)

    return asyncio.run(scenario())


class TestServer:
    def test_ping(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.ping()

        response = with_server(check)
        assert response["ok"]
        assert "version" in response

    def test_stats(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.stats()

        response = with_server(check)
        assert response["stats"]["jobs"] == 0
        assert response["inflight_points"] == 0

    def test_sweep_cross_product(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.sweep(
                    benchmarks=["BFS"], designs=["baseline", "bow"],
                    windows=[3], scale=TINY)

        response = with_server(check)
        assert response["ok"]
        assert response["failed"] == 0
        assert len(response["points"]) == 2
        for point in response["points"]:
            assert point["ok"]
            assert point["source"] == "sim"
            assert point["cycles"] > 0
            assert point["ipc"] > 0

    def test_sweep_explicit_points_and_warm_reuse(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                first = await client.sweep(
                    points=[["BFS", "bow", 3]], scale=TINY)
                second = await client.sweep(
                    points=[["bfs", "bow", 3]], scale=TINY)
            return first, second

        first, second = with_server(check)
        assert first["points"][0]["source"] == "sim"
        assert second["points"][0]["source"] == "warm"
        assert first["points"][0]["cycles"] == second["points"][0]["cycles"]
        assert simulations_run() == 1

    def test_one_connection_carries_many_requests(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                ping = await client.ping()
                sweep = await client.sweep(points=[["BFS", "baseline", 3]],
                                           scale=TINY)
                stats = await client.stats()
            return ping, sweep, stats

        ping, sweep, stats = with_server(check)
        assert ping["ok"] and sweep["ok"] and stats["ok"]
        assert stats["stats"]["jobs"] == 1

    def test_bad_json_answers_without_dropping_the_connection(self):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            bad = json.loads(await reader.readline())
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            good = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return bad, good

        bad, good = with_server(check)
        assert not bad["ok"]
        assert "bad request" in bad["error"]
        assert good["ok"]

    def test_non_object_request_rejected(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.request([1, 2, 3])

        response = with_server(check)
        assert not response["ok"]
        assert "object" in response["error"]

    def test_unknown_op_rejected(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.request({"op": "teleport"})

        response = with_server(check)
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_unknown_design_is_a_clean_error_response(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.sweep(benchmarks=["BFS"],
                                          designs=["quantum"],
                                          scale=TINY)

        response = with_server(check)
        assert not response["ok"]
        assert response["error_type"] == "ExperimentError"
        assert "quantum" in response["error"]

    def test_bad_scale_is_a_service_error(self):
        async def check(server):
            async with ServiceClient(port=server.port) as client:
                return await client.request({
                    "op": "sweep", "benchmarks": ["BFS"],
                    "designs": ["bow"],
                    "scale": {"warp_factor": 9}})

        response = with_server(check)
        assert not response["ok"]
        assert response["error_type"] == "ServiceError"

    def test_shutdown_op_stops_serve_until_shutdown(self):
        async def scenario():
            server = SweepServer(SweepService(cache=None))
            await server.start()
            waiter = asyncio.ensure_future(server.serve_until_shutdown())
            async with ServiceClient(port=server.port) as client:
                ack = await client.shutdown()
            await asyncio.wait_for(waiter, timeout=5.0)
            await server.close()
            return ack

        ack = asyncio.run(scenario())
        assert ack["ok"]
        assert ack["op"] == "shutdown"

    def test_failed_point_reported_per_point_not_per_connection(
            self, monkeypatch):
        from repro.experiments import runner
        from repro.experiments.resilience import RetryPolicy

        real_execute = runner.execute_run

        def failing_execute(benchmark, design, *args, **kwargs):
            if design == "bow":
                raise ValueError("injected failure")
            return real_execute(benchmark, design, *args, **kwargs)

        monkeypatch.setattr(runner, "execute_run", failing_execute)

        async def scenario():
            service = SweepService(cache=None,
                                   retry=RetryPolicy(max_attempts=1))
            async with SweepServer(service) as server:
                async with ServiceClient(port=server.port) as client:
                    return await client.sweep(
                        benchmarks=["BFS"], designs=["baseline", "bow"],
                        scale=TINY)

        response = asyncio.run(scenario())
        assert not response["ok"]
        assert response["failed"] == 1
        by_design = {p["design"]: p for p in response["points"]}
        assert by_design["baseline"]["ok"]
        assert not by_design["bow"]["ok"]
        assert by_design["bow"]["error_type"] == "SweepPointError"


class ServerThread:
    """A sweep server on a background thread with its own event loop —
    how the synchronous ``run_loadgen`` entry point is tested."""

    def __init__(self):
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "server did not shut down"

    def _run(self):
        async def main():
            server = SweepServer(SweepService(cache=None))
            await server.start()
            self.port = server.port
            self._ready.set()
            try:
                await server.serve_until_shutdown()
            finally:
                await server.close()

        asyncio.run(main())


class TestLoadgen:
    def test_loadgen_demonstrates_single_flight(self, tmp_path):
        report_path = tmp_path / "BENCH_service.json"
        with ServerThread() as running:
            report = run_loadgen(
                port=running.port, clients=8,
                benchmarks=("BFS", "NW"), designs=("baseline", "bow"),
                windows=(3,), scale=TINY, shutdown=True,
                report_path=str(report_path))

        unique = report["unique_points"]
        assert unique == 4
        flight = report["single_flight"]
        assert flight["dedup_ok"]
        # Cold: 8 concurrent clients x 4 identical points cost exactly
        # 4 simulations; warm: zero.
        assert flight["cold_simulated"] == unique
        assert flight["cold_resolved_once"] == unique
        assert flight["warm_simulated"] == 0
        assert flight["warm_hits"] == 8 * unique
        for name in ("cold", "warm"):
            data = report["passes"][name]
            assert data["points_served"] == 8 * unique
            assert data["points_per_sec"] > 0
            assert data["latency"]["p95"] >= data["latency"]["p50"]

        written = json.loads(report_path.read_text(encoding="utf-8"))
        assert written["single_flight"]["dedup_ok"]

        text = format_report(report)
        assert "single-flight OK" in text
        assert "cold" in text and "warm" in text

    def test_loadgen_max_points_truncates(self):
        with ServerThread() as running:
            report = run_loadgen(
                port=running.port, clients=2,
                benchmarks=("BFS", "NW"), designs=("baseline", "bow"),
                windows=(3,), scale=TINY, max_points=2, shutdown=True)
        assert report["unique_points"] == 2
        assert report["single_flight"]["dedup_ok"]

    def test_loadgen_validates_arguments(self):
        with pytest.raises(ServiceError):
            run_loadgen(clients=0)
        with ServerThread() as running:
            with pytest.raises(ServiceError):
                run_loadgen(port=running.port, clients=1,
                            benchmarks=("BFS",), designs=("bow",),
                            scale=TINY, max_points=0, shutdown=True)
            # The failed run left the server up; shut it down cleanly.
            run_loadgen(port=running.port, clients=1,
                        benchmarks=("BFS",), designs=("bow",),
                        scale=TINY, shutdown=True)

    def test_loadgen_connection_refused_is_a_service_error(
            self, monkeypatch):
        from repro.service import client as client_module

        monkeypatch.setattr(client_module, "CONNECT_RETRY_SECONDS", 0.2)
        with pytest.raises(ServiceError):
            run_loadgen(port=1, clients=1, scale=TINY)


class TestFormatReport:
    def test_failed_dedup_is_loud(self):
        report = {
            "clients": 2, "requested_per_client": 1, "unique_points": 1,
            "host": "h", "port": 1,
            "passes": {"cold": {
                "points_served": 2, "wall_seconds": 1.0,
                "points_per_sec": 2.0,
                "latency": {"mean": 0.5, "p50": 0.5, "p95": 0.5,
                            "max": 0.5},
                "service": {"simulated": 2, "coalesced": 0,
                            "warm_hits": 0},
            }},
            "single_flight": {"dedup_ok": False, "cold_simulated": 2,
                              "cold_resolved_once": 2,
                              "warm_simulated": 0},
        }
        assert "single-flight FAILED" in format_report(report)
