"""API-surface tests: every public export exists and minimally works.

A release check: `repro`'s documented entry points must be importable
from the places the README shows, and the package's `__all__` lists
must be accurate (every name resolvable).
"""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.isa",
    "repro.kernels",
    "repro.compiler",
    "repro.gpu",
    "repro.core",
    "repro.simt",
    "repro.energy",
    "repro.stats",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version(self):
        assert repro.__version__

    def test_readme_quickstart_symbols(self):
        # The exact imports the README shows.
        from repro import build_benchmark_trace, simulate_design  # noqa: F401

    def test_designs_cover_paper(self):
        from repro.core import DESIGNS

        assert {"baseline", "bow", "bow-wb", "bow-wr",
                "bow-wr-half"} <= set(DESIGNS)


class TestMinimalFlows:
    def test_parse_compile_simulate(self):
        """The three-line story: parse, classify, simulate."""
        from repro import parse_program, simulate_design
        from repro.compiler import classify_linear_writes
        from repro.kernels import KernelTrace, WarpTrace

        program = parse_program("""
            mov.u32 $r1, 0x2
            add.u32 $r2, $r1, $r1
            st.global.u32 [$r1], $r2
        """)
        decisions = classify_linear_writes(program, 3)
        assert len(decisions) == 2
        trace = KernelTrace(name="mini", warps=[WarpTrace(0, program)])
        result = simulate_design("bow", trace)
        assert list(result.memory_image.values()) == [4]

    def test_builder_flow(self):
        from repro.kernels.builder import KernelBuilder

        b = KernelBuilder("mini")
        b.mov(1, imm=2)
        b.add(2, 1, 1)
        b.st(addr=1, value=2)
        b.exit()
        trace = b.trace()
        assert trace.total_instructions == 4

    def test_benchmark_flow(self):
        from repro import benchmark_names, build_benchmark_trace

        assert len(benchmark_names()) == 15
        trace = build_benchmark_trace(benchmark_names()[0], num_warps=1,
                                      scale=0.05)
        assert trace.total_instructions > 0

    def test_experiment_flow(self):
        from repro.experiments import EXPERIMENTS, run_experiment

        assert len(EXPERIMENTS) >= 18
        assert "Table I" in run_experiment("table1")

    def test_energy_flow(self):
        from repro import Counters, EnergyModel

        counters = Counters()
        counters.rf_reads = 10
        assert EnergyModel().breakdown(counters).rf_energy_pj > 0

    def test_simt_flow(self):
        from repro.kernels.builder import KernelBuilder
        from repro.simt import expand_masked_trace

        b = KernelBuilder("d")
        b.mov(1, imm=1)
        b.branch(taken="a", fallthrough="b", probability=0.5)
        b.block("a").add(2, 1, 1).jump("j")
        b.block("b").sub(2, 1, 1).jump("j")
        b.block("j").exit()
        trace = expand_masked_trace(b.build(), seed=1)
        assert trace
