#!/usr/bin/env python
"""Local approximation of ruff's isort rules (`I` in pyproject.toml).

CI enforces import ordering with real ruff (`ruff check .`); this tool
exists for environments without ruff on the path — it re-implements the
default isort conventions the repo is kept clean against, close enough
to catch ordering regressions before they reach CI:

* section order: ``__future__`` < stdlib < third-party < first-party
  (``repro``) < relative, with a blank line between sections;
* straight ``import x`` statements before ``from x import y`` within a
  section, each run sorted case-insensitively by module;
* relative imports furthest-to-closest (``..`` before ``.``);
* names inside a ``from`` import ordered by type — CONSTANTS, then
  CamelCase classes, then everything else — alphabetically within each
  group (isort's default ``order-by-type``).

Usage: ``python tools/check_import_order.py [PATH ...]`` (defaults to
the repo's lint roots).  Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Sequence, Tuple

REPO = Path(__file__).resolve().parents[1]
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")
FIRST_PARTY = ("repro",)

_STDLIB = set(getattr(sys, "stdlib_module_names", ()))


def _section(node: ast.stmt) -> Tuple[int, int]:
    """(section rank, relative depth) of one import statement."""
    if isinstance(node, ast.ImportFrom):
        if node.level:
            # Relative: furthest-to-closest, so deeper levels first.
            return (4, -node.level)
        module = node.module or ""
    else:
        module = node.names[0].name
    top = module.split(".")[0]
    if top == "__future__":
        return (0, 0)
    if top in _STDLIB:
        return (1, 0)
    if top in FIRST_PARTY:
        return (3, 0)
    return (2, 0)


def _module_key(node: ast.stmt) -> Tuple:
    kind = 1 if isinstance(node, ast.ImportFrom) else 0
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
    else:
        module = node.names[0].name
    return (kind, module.lower())


def _name_rank(name: str) -> int:
    stripped = name.strip("_")
    if stripped and stripped == stripped.upper():
        return 0  # CONSTANT
    if stripped[:1].isupper():
        return 1  # CamelCase class
    return 2


def _check_names(node: ast.stmt, path: Path, problems: List[str]) -> None:
    if not isinstance(node, ast.ImportFrom):
        return
    names = [alias.name for alias in node.names]
    if names == ["*"]:
        return
    expected = sorted(names, key=lambda n: (_name_rank(n), n.lower()))
    if names != expected:
        problems.append(
            f"{path}:{node.lineno}: names unsorted: "
            f"{', '.join(names)} -> {', '.join(expected)}"
        )


def _check_block(
    block: Sequence[ast.stmt], path: Path, problems: List[str]
) -> None:
    keys = [(_section(node), _module_key(node)) for node in block]
    if keys != sorted(keys):
        for previous, current in zip(block, block[1:]):
            if (_section(previous), _module_key(previous)) > (
                _section(current),
                _module_key(current),
            ):
                problems.append(
                    f"{path}:{current.lineno}: import out of order "
                    f"(after line {previous.lineno})"
                )
    for previous, current in zip(block, block[1:]):
        if _section(previous)[0] != _section(current)[0]:
            gap = current.lineno - (previous.end_lineno or previous.lineno)
            if gap < 2:
                problems.append(
                    f"{path}:{current.lineno}: missing blank line "
                    f"between import sections"
                )
    for node in block:
        _check_names(node, path, problems)


def _blocks(body: Sequence[ast.stmt]):
    block: List[ast.stmt] = []
    for node in body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            block.append(node)
            continue
        if block:
            yield block
            block = []
        for child in (
            getattr(node, "body", ()),
            getattr(node, "orelse", ()),
            getattr(node, "finalbody", ()),
        ):
            if child:
                yield from _blocks(child)
        for handler in getattr(node, "handlers", ()):
            yield from _blocks(handler.body)
    if block:
        yield block


def check_file(path: Path) -> List[str]:
    problems: List[str] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for block in _blocks(tree.body):
        _check_block(block, path, problems)
    return problems


def main(argv: Sequence[str]) -> int:
    roots = [Path(arg) for arg in argv] or [
        REPO / root for root in DEFAULT_ROOTS
    ]
    problems: List[str] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            problems.extend(check_file(file))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} import-order problem(s)")
        return 1
    print("import order clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
