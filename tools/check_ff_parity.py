#!/usr/bin/env python3
"""Fast-forward parity gate: one benchmark, every design, on vs off.

CI runs this in the fuzz-smoke and perf jobs as a cheap end-to-end
check that the event-horizon loop is an optimization only: for the
chosen benchmark trace, a run with fast-forward enabled must be
bit-identical to the per-cycle reference run for every registered
design — same counters (``fast_forwarded_cycles`` aside, the one
field that measures the optimization itself), same register image,
same memory image.

Exit status: 0 when every design matches, 1 on any divergence (with
a per-field diff on stderr).  Usage:

    PYTHONPATH=src python tools/check_ff_parity.py [BENCHMARK]

The default benchmark is SAD at the experiment layer's QUICK scale;
pass any registered benchmark name to point the gate elsewhere.
"""

from __future__ import annotations

import dataclasses
import sys

from repro.core.bow_sm import simulate_design
from repro.core.designs import design_names
from repro.experiments.runner import QUICK, benchmark_trace, design_spec

WINDOW = 3


def comparable(result) -> dict:
    counters = dataclasses.asdict(result.counters)
    counters.pop("fast_forwarded_cycles", None)
    return {
        "counters": counters,
        "registers": result.register_image,
        "memory": result.memory_image,
    }


def check(benchmark: str) -> int:
    failures = 0
    for design in design_names():
        spec = design_spec(design)
        trace = benchmark_trace(
            benchmark, QUICK, window_size=WINDOW if spec.hinted else None
        )
        fast = simulate_design(
            design, trace, window_size=WINDOW,
            memory_seed=QUICK.memory_seed, fast_forward=True,
        )
        slow = simulate_design(
            design, trace, window_size=WINDOW,
            memory_seed=QUICK.memory_seed, fast_forward=False,
        )
        a, b = comparable(fast), comparable(slow)
        jumped = fast.counters.fast_forwarded_cycles
        if a == b:
            pct = 100.0 * jumped / max(1, fast.counters.cycles)
            print(
                f"{benchmark}/{design}: OK "
                f"({fast.counters.cycles} cycles, "
                f"{jumped} fast-forwarded, {pct:.0f}%)"
            )
            continue
        failures += 1
        print(f"{benchmark}/{design}: MISMATCH", file=sys.stderr)
        for section in a:
            if a[section] == b[section]:
                continue
            if section == "counters":
                for key in a[section]:
                    if a[section][key] != b[section][key]:
                        print(
                            f"  counters.{key}: fast={a[section][key]} "
                            f"slow={b[section][key]}",
                            file=sys.stderr,
                        )
            else:
                print(f"  {section} images differ", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else "SAD"))
