#!/usr/bin/env python3
"""Maintain and enforce the engine throughput baseline.

``benchmarks/BENCH_engine.json`` records the committed cycles/sec of
every design in ``benchmarks/test_engine_perf.py``.  CI's
perf-regression job re-runs that bench with ``--benchmark-json`` and
calls this script in ``--check`` mode, which fails (exit 1) when any
design's throughput dropped more than ``--threshold`` (default 25%)
below the baseline.

Refresh the baseline after an intentional perf change::

    python tools/update_bench_baseline.py

Check a fresh pytest-benchmark results file against the baseline::

    python tools/update_bench_baseline.py --check results.json

The comparison is deliberately generous (25%, minimum over 3 rounds)
so machine-to-machine noise does not fail CI, while the order-of-
magnitude slowdowns worth catching still do.  The gate is two-sided
but only fails downward: an entry more than ``--threshold`` *above*
its baseline prints an "improvement available, re-baseline" notice
(exit stays 0), because a stale slow baseline would silently tolerate
a real regression of the same size.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_engine.json"
BENCH_FILE = REPO_ROOT / "benchmarks" / "test_engine_perf.py"
DEFAULT_THRESHOLD = 0.25


def extract_rates(results: dict) -> Dict[str, dict]:
    """Per-entry throughput from a pytest-benchmark JSON document.

    Returns ``{"BENCH/design": {"cycles_per_sec": int, "cycles": int,
    "fast_forwarded_cycles": int}}`` for every benchmark entry that
    carries the engine bench's ``extra_info`` fields; entries without
    them are ignored.  Entries predating the ``bench`` tag fall back
    to the design name alone.
    """
    rates: Dict[str, dict] = {}
    for entry in results.get("benchmarks", []):
        info = entry.get("extra_info", {})
        if "design" not in info or "cycles_per_sec" not in info:
            continue
        key = info["design"]
        if "bench" in info:
            key = f"{info['bench']}/{key}"
        rates[key] = {
            "cycles_per_sec": int(info["cycles_per_sec"]),
            "cycles": int(info.get("cycles", 0)),
            "fast_forwarded_cycles": int(
                info.get("fast_forwarded_cycles", 0)),
        }
    return rates


def compare(baseline: Dict[str, dict], current: Dict[str, dict],
            threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Regression messages (empty = the gate passes).

    A design regresses when its cycles/sec dropped more than
    ``threshold`` below the baseline; a design present in the baseline
    but missing from the results is also a failure (the bench stopped
    covering it).  Designs that got *faster*, or new designs not yet in
    the baseline, pass.
    """
    problems = []
    for design, recorded in sorted(baseline.items()):
        reference = recorded["cycles_per_sec"]
        if design not in current:
            problems.append(f"{design}: missing from results "
                            "(bench no longer covers it?)")
            continue
        measured = current[design]["cycles_per_sec"]
        if reference <= 0:
            continue
        drop = 1.0 - measured / reference
        if drop > threshold:
            problems.append(
                f"{design}: {measured} cycles/sec is {drop:.1%} below "
                f"the baseline {reference} (threshold {threshold:.0%})"
            )
    return problems


def improvements(baseline: Dict[str, dict], current: Dict[str, dict],
                 threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Progress notices: entries that beat the baseline by > threshold.

    These never fail the gate — they flag that the committed baseline
    has fallen behind an intentional speedup and should be refreshed,
    so the regression gate regains its bite (a stale, slow baseline
    tolerates a real regression of the same size as the speedup).
    """
    notices = []
    for design, recorded in sorted(baseline.items()):
        reference = recorded["cycles_per_sec"]
        if design not in current or reference <= 0:
            continue
        measured = current[design]["cycles_per_sec"]
        gain = measured / reference - 1.0
        if gain > threshold:
            notices.append(
                f"{design}: {measured} cycles/sec is {gain:.1%} above "
                f"the baseline {reference} — improvement available, "
                "re-baseline with tools/update_bench_baseline.py"
            )
    return notices


def run_bench(json_path: Path) -> dict:
    """Run the engine bench, returning its pytest-benchmark document."""
    command = [
        sys.executable, "-m", "pytest", str(BENCH_FILE),
        "--benchmark-only", "-q",
        f"--benchmark-json={json_path}",
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    if src not in env.get("PYTHONPATH", "").split(os.pathsep):
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src, env.get("PYTHONPATH")) if part
        )
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        raise SystemExit(f"engine bench failed (exit {completed.returncode})")
    return json.loads(json_path.read_text())


def refresh(baseline_path: Path = BASELINE_PATH) -> Dict[str, dict]:
    """Re-run the bench and rewrite the committed baseline."""
    with tempfile.TemporaryDirectory() as tmp:
        results = run_bench(Path(tmp) / "results.json")
    rates = extract_rates(results)
    if not rates:
        raise SystemExit("no engine bench entries found in the results")
    document = {
        "bench": "benchmarks/test_engine_perf.py",
        "metric": "cycles_per_sec (min over 5 rounds)",
        "threshold": DEFAULT_THRESHOLD,
        "designs": rates,
    }
    baseline_path.write_text(json.dumps(document, indent=2, sort_keys=True)
                             + "\n")
    return rates


def check(results_path: Path, baseline_path: Path = BASELINE_PATH,
          threshold: float = DEFAULT_THRESHOLD) -> int:
    """Compare a results file against the baseline; 0 = gate passes."""
    if not baseline_path.exists():
        print(f"error: no baseline at {baseline_path}; "
              "run tools/update_bench_baseline.py first", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())["designs"]
    current = extract_rates(json.loads(results_path.read_text()))
    problems = compare(baseline, current, threshold)
    if problems:
        print("perf regression gate FAILED:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    for design, recorded in sorted(baseline.items()):
        measured = current[design]["cycles_per_sec"]
        delta = measured / recorded["cycles_per_sec"] - 1.0
        print(f"  {design:24s} {measured:>12d} cycles/sec "
              f"({delta:+.1%} vs baseline)")
    for line in improvements(baseline, current, threshold):
        print(f"perf progress notice: {line}")
    print("perf regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="RESULTS.json", type=Path, default=None,
        help="compare a pytest-benchmark JSON file against the baseline "
             "instead of refreshing it",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help=f"baseline file (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="maximum tolerated cycles/sec drop, as a fraction "
             f"(default: {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0 or args.threshold >= 1:
        parser.error("--threshold must be between 0 and 1 (exclusive)")
    if args.check is not None:
        return check(args.check, args.baseline, args.threshold)
    rates = refresh(args.baseline)
    for design, recorded in sorted(rates.items()):
        print(f"  {design:24s} {recorded['cycles_per_sec']:>12d} cycles/sec")
    print(f"baseline written to {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
