"""Measure line coverage of ``src/repro`` with the stdlib only.

CI runs the real gate with ``pytest-cov``; this tool exists for
environments without it (it was used to pick the ``--cov-fail-under``
baseline).  It installs a ``sys.settrace`` hook restricted to files
under ``src/repro``, runs the test suite in-process, and reports the
fraction of executable lines hit, per file and in total.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Caveats versus coverage.py: no branch coverage, and lines only reachable
through C-level callbacks may be missed, so the reported number is a
slight *underestimate* — safe to use as a gate floor.
"""

from __future__ import annotations

import os
import sys
import threading


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")

_hit = {}  # filename -> set of line numbers


def _local_trace(frame, event, arg):
    if event == "line":
        _hit[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    if filename not in _hit:
        _hit[filename] = set()
    return _local_trace


def _executable_lines(path: str) -> set:
    """All line numbers that carry bytecode in ``path``."""
    with open(path, "r") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_executable = 0
    total_hit = 0
    rows = []
    for root, _, names in os.walk(SRC):
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            executable = _executable_lines(path)
            hit = _hit.get(path, set()) & executable
            total_executable += len(executable)
            total_hit += len(hit)
            percent = 100.0 * len(hit) / len(executable) if executable else 100.0
            rows.append((os.path.relpath(path, REPO), len(executable),
                         len(hit), percent))

    for path, n_exec, n_hit, percent in rows:
        print(f"{path:60s} {n_hit:5d}/{n_exec:5d} {percent:6.1f}%")
    overall = 100.0 * total_hit / total_executable if total_executable else 0.0
    print(f"\nTOTAL {total_hit}/{total_executable} lines = {overall:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
