"""Walk through the BOW-WR compiler pass on the paper's own example.

Reproduces the SS IV-B discussion: parses the Figure 6 BTREE snippet,
runs liveness + writeback classification at IW=3, prints each write's
destination decision and the Table I write counts, then compiles a
custom kernel you can edit below to see the hints change.

Usage::

    python examples/compiler_walkthrough.py
"""

from repro.compiler import classify_linear_writes, compile_kernel
from repro.compiler.allocation import linear_register_demand
from repro.core.window import table1_write_counts
from repro.isa import parse_program
from repro.kernels.cfg import straightline_kernel
from repro.kernels.snippets import btree_snippet
from repro.stats.report import format_percent, format_table

WINDOW = 3

#: Edit this kernel and re-run to see the classifier react.
CUSTOM_KERNEL = """
    ld.global.u32 $r1, [$r8]      // loaded value, reused immediately
    add.u32 $r2, $r1, $r1         // transient intermediate
    mul.u32 $r3, $r2, $r2         // reused now AND much later
    st.global.u32 [$r9], $r3
    nop
    nop
    nop
    add.u32 $r4, $r3, $r3         // far reuse of $r3 -> must hit the RF
    st.global.u32 [$r9], $r4
"""


def show_snippet() -> None:
    snippet = btree_snippet()
    print("Figure 6 snippet, write-by-write classification (IW=3):\n")
    decisions = classify_linear_writes(snippet, WINDOW)
    rows = []
    for item in decisions:
        inst = snippet[item.index]
        rows.append([
            item.index + 2,  # the paper numbers lines from 2
            str(inst),
            item.writeback.value,
            item.reads_in_window,
            "yes" if item.needs_rf else "no",
        ])
    print(format_table(
        ["line", "instruction", "destination", "forwarded reads", "RF write"],
        rows,
    ))

    print("\nTable I, regenerated:")
    counts = table1_write_counts(snippet, WINDOW)
    designs = ["write-through", "write-back", "compiler"]
    regs = sorted(counts["write-through"])
    rows = [[f"$r{r}"] + [counts[d].get(r, 0) for d in designs] for r in regs]
    rows.append(["Total"] + [sum(counts[d].values()) for d in designs])
    print(format_table(["dest"] + designs, rows))


def show_custom() -> None:
    kernel = straightline_kernel("custom", parse_program(CUSTOM_KERNEL))
    compiled = compile_kernel(kernel, WINDOW)
    print("\nCustom kernel after compilation (hints in brackets):\n")
    for inst in compiled.cfg.blocks["entry"].instructions:
        hint = f"[{inst.hint.name}]" if inst.dest is not None else ""
        print(f"    {str(inst):40s} {hint}")

    demand = linear_register_demand(
        kernel.blocks["entry"].instructions, WINDOW
    )
    print(f"\nTransient writes: "
          f"{format_percent(demand.transient_write_fraction)} "
          f"(paper average: 52% at IW=3)")
    print(f"Registers that never need an RF slot: "
          f"{demand.transient_registers} of {demand.total_registers}")


if __name__ == "__main__":
    show_snippet()
    show_custom()
