"""Lane-level view: divergence, predication and memory coalescing.

The scalar timing model treats a warp-register as one value; this
example drops to the lane level (32 threads per warp, SS II of the
paper) and shows the substrate underneath: the SIMT reconvergence stack
splitting and merging lanes across a divergent kernel, per-lane
predication, and how scattered addresses decompose into memory
transactions.

Usage::

    python examples/simt_divergence.py
"""

from repro.isa import parse_program
from repro.kernels.cfg import BasicBlock, Edge, KernelCFG
from repro.simt import (
    execute_masked_trace,
    expand_masked_trace,
    immediate_post_dominators,
)
from repro.simt.stack import simd_efficiency
from repro.stats.report import format_percent, format_table

#: A kernel with a data-dependent diamond inside a loop: the classic
#: divergence shape.
KERNEL = KernelCFG("divergent", [
    BasicBlock("entry", parse_program("""
        mov.u32 $r1, 0x0
        mov.u32 $r7, 0x40
    """), [Edge("head")]),
    BasicBlock("head", parse_program("""
        add.u32 $r1, $r1, $r2
    """), [Edge("then", 0.6), Edge("else", 0.4)]),
    BasicBlock("then", parse_program("""
        add.u32 $r3, $r1, $r1
    """), [Edge("join")]),
    BasicBlock("else", parse_program("""
        sub.u32 $r3, $r1, $r2
    """), [Edge("join")]),
    BasicBlock("join", parse_program("""
        st.global.u32 [$r7], $r3
    """), [Edge("head", 0.75), Edge("exit", 0.25)]),
    BasicBlock("exit", parse_program("exit")),
], entry="entry")


def main() -> None:
    ipdom = immediate_post_dominators(KERNEL)
    print("Reconvergence points (immediate post-dominators):")
    for label, reconv in ipdom.items():
        print(f"  {label:8s} -> {reconv or '(kernel exit)'}")

    print("\nExpanding one warp through the SIMT stack...")
    trace = expand_masked_trace(KERNEL, warp_id=0, seed=11,
                                max_instructions=20_000)
    rows = []
    for item in trace[:14]:
        rows.append([item.block, str(item.inst)[:38],
                     f"{item.mask}", item.mask.count])
    print(format_table(["block", "instruction", "mask", "lanes"], rows,
                       title="First issues of the masked trace"))

    print(f"\nDynamic instructions: {len(trace)}")
    print(f"SIMD efficiency: {format_percent(simd_efficiency(trace))} "
          f"(100% would be divergence-free)")

    result = execute_masked_trace(trace)
    stats = result.coalescing
    print(f"\nMemory coalescing over {stats.accesses} accesses:")
    print(f"  average transactions per access: "
          f"{stats.average_transactions():.2f} (1.0 = fully coalesced)")
    print(f"  fully coalesced accesses: "
          f"{format_percent(stats.fully_coalesced_fraction())}")

    # Lanes took different paths; their $r3 values differ accordingly.
    distinct = len({int(v) for v in result.state.reg(3)})
    print(f"\nDistinct per-lane $r3 values after divergence: {distinct}/32")


if __name__ == "__main__":
    main()
