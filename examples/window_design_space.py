"""Design-space study: window size vs performance, energy and storage.

The paper picks IW=3 by balancing bypass coverage against collector
size (SS III / SS V-A).  This example sweeps window sizes 1..7 on a
register-hungry workload (SAD by default) and prints, per design point:

* read/write bypass rates (Figure 3's quantities),
* IPC improvement over the baseline (Figure 10's quantity),
* normalized RF dynamic energy (Figure 13's quantity),
* BOC storage added per SM.

Usage::

    python examples/window_design_space.py [BENCHMARK]
"""

import sys
from dataclasses import replace

from repro import EnergyModel, bow_wr_config, simulate_bow, simulate_design
from repro.kernels.suites import get_profile
from repro.kernels.synthetic import generate_compiled_trace
from repro.stats.report import format_percent, format_table


def main() -> None:
    bench = sys.argv[1].upper() if len(sys.argv) > 1 else "SAD"
    spec = replace(get_profile(bench).spec, num_warps=16)
    spec = spec.scaled(0.25)
    base_trace = generate_compiled_trace(spec, 3)
    print(f"{bench}: {base_trace.total_instructions} dynamic instructions\n")

    base = simulate_design("baseline", base_trace)
    model = EnergyModel()

    rows = []
    for window_size in range(1, 8):
        # Recompile for each window: the hint bits depend on it.
        trace = generate_compiled_trace(spec, window_size)
        bow = bow_wr_config(window_size)
        result = simulate_bow(trace, bow=bow)
        counters = result.counters
        normalized = model.normalized(counters, base.counters)
        added_kb = (bow.total_boc_bytes() - 3 * 128 * 32) / 1024
        rows.append([
            window_size,
            format_percent(counters.read_bypass_rate),
            format_percent(counters.write_bypass_rate),
            format_percent(result.ipc / base.ipc - 1.0),
            f"{normalized.total_pj:.3f}",
            f"{added_kb:.0f}KB",
        ])

    print(format_table(
        ["IW", "reads bypassed", "writes bypassed", "IPC gain",
         "norm. RF energy", "added storage"],
        rows,
        title="Window-size design space (BOW-WR, conservative sizing)",
    ))
    print("\nThe paper's pick, IW=3, is where the IPC and energy curves "
          "flatten while storage keeps doubling - the same knee should "
          "be visible above.")


if __name__ == "__main__":
    main()
