"""Quickstart: run one benchmark on the baseline GPU and on BOW.

Usage::

    python examples/quickstart.py [BENCHMARK] [WARPS] [SCALE]

Builds the BTREE workload (or any Table III benchmark name passed as an
argument), simulates the unmodified GPU and BOW at a window size of 3,
and prints the headline effects the paper reports: fewer register-file
accesses, lower operand-collection residency, higher IPC, and lower RF
dynamic energy.
"""

import sys

from repro import (
    EnergyModel,
    build_benchmark_trace,
    simulate_design,
)
from repro.stats.report import format_percent, format_table


def main() -> None:
    bench = sys.argv[1].upper() if len(sys.argv) > 1 else "BTREE"
    warps = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.3
    print(f"Building the {bench} workload ({warps} warps)...")
    trace = build_benchmark_trace(bench, num_warps=warps, scale=scale)
    print(f"  {trace.total_instructions} dynamic instructions, "
          f"{format_percent(trace.memory_fraction())} memory\n")

    print("Simulating the baseline GPU...")
    base = simulate_design("baseline", trace)
    print("Simulating BOW (write-through, IW=3)...")
    bow = simulate_design("bow", trace, window_size=3)

    model = EnergyModel()
    rows = [
        ["IPC", f"{base.ipc:.3f}", f"{bow.ipc:.3f}",
         format_percent(bow.ipc / base.ipc - 1.0)],
        ["RF reads", base.counters.rf_reads, bow.counters.rf_reads,
         format_percent(1 - bow.counters.rf_reads
                        / base.counters.rf_reads)],
        ["RF writes", base.counters.rf_writes, bow.counters.rf_writes,
         format_percent(1 - bow.counters.rf_writes
                        / max(1, base.counters.rf_writes))],
        ["reads forwarded", 0, bow.counters.bypassed_reads,
         format_percent(bow.counters.read_bypass_rate)],
        ["OC-stage cycles", base.counters.oc_wait_cycles,
         bow.counters.oc_wait_cycles,
         format_percent(1 - bow.counters.oc_wait_cycles
                        / base.counters.oc_wait_cycles)],
        ["RF dynamic energy", "1.000",
         f"{model.normalized(bow.counters, base.counters).total_pj:.3f}",
         format_percent(model.savings(bow.counters, base.counters))],
    ]
    print()
    print(format_table(["metric", "baseline", "BOW", "delta/saved"], rows,
                       title=f"{bench}: baseline vs BOW (IW=3)"))

    same = base.memory_image == bow.memory_image
    print(f"\nMemory images identical across designs: {same}")
    if not same:
        raise SystemExit("bypassing changed results - this is a bug")


if __name__ == "__main__":
    main()
