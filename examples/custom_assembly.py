"""End-to-end on your own assembly: write SASS-like code, run every design.

Shows the full stack on a hand-written kernel: assemble, classify
writebacks, expand to a multi-warp launch, simulate baseline / BOW /
BOW-WR / RFC, and verify that every design produces the same memory
image as the functional reference executor.

Usage::

    python examples/custom_assembly.py
"""

from repro import simulate_design
from repro.compiler.writeback import classify_linear_writes
from repro.gpu.reference import execute_reference
from repro.isa import parse_program
from repro.kernels.trace import KernelTrace, WarpTrace
from repro.stats.report import format_percent, format_table

#: A little dot-product-style kernel: accumulator chains, address
#: arithmetic, loads and a store - the idioms BOW feeds on.
KERNEL = """
    mov.u32  $r1, 0x0             // acc = 0
    mov.u32  $r2, 0x100           // base pointer
    ld.global.u32 $r3, [$r2]      // x0
    add.u32  $r4, $r2, 0x4
    ld.global.u32 $r5, [$r4]      // x1
    mul.u32  $r6, $r3, $r5
    add.u32  $r1, $r1, $r6        // acc += x0*x1
    add.u32  $r4, $r4, 0x4
    ld.global.u32 $r3, [$r4]      // x2
    mul.u32  $r6, $r3, $r3
    add.u32  $r1, $r1, $r6        // acc += x2*x2
    st.global.u32 [$r2], $r1
    exit
"""

WINDOW = 3
NUM_WARPS = 8


def main() -> None:
    program = parse_program(KERNEL)
    print(f"Assembled {len(program)} instructions.\n")

    # The compiler's view: where does each computed value belong?
    decisions = classify_linear_writes(program, WINDOW)
    hinted = list(program)
    for item in decisions:
        hinted[item.index] = hinted[item.index].with_hint(
            item.writeback.hint
        )
    transient = sum(1 for d in decisions if not d.needs_rf)
    print(f"Writeback classification at IW={WINDOW}: "
          f"{transient}/{len(decisions)} values never touch the RF.\n")

    trace = KernelTrace(name="dot", warps=[
        WarpTrace(warp_id=w, instructions=hinted) for w in range(NUM_WARPS)
    ])
    reference = execute_reference(trace)

    rows = []
    for design in ("baseline", "bow", "bow-wb", "bow-wr", "rfc"):
        result = simulate_design(design, trace, window_size=WINDOW)
        assert result.memory_image == reference.memory, design
        counters = result.counters
        rows.append([
            design,
            counters.cycles,
            f"{result.ipc:.3f}",
            counters.rf_reads,
            counters.rf_writes,
            format_percent(counters.read_bypass_rate),
        ])
    print(format_table(
        ["design", "cycles", "IPC", "RF reads", "RF writes",
         "reads bypassed"],
        rows,
        title=f"Custom kernel across designs ({NUM_WARPS} warps)",
    ))
    print("\nAll designs produced the reference memory image. "
          "Bypassing is invisible to the program - that is the point.")


if __name__ == "__main__":
    main()
