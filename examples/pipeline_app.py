"""A two-kernel application: producer feeding consumer through memory.

Real GPU applications launch kernels in sequence, each consuming the
memory its predecessor produced.  This example chains two library
kernels — a saxpy producer and a reduction consumer — by threading the
first launch's memory image into the second as its preload, runs the
whole app under baseline and BOW-WR, and checks the final scalar
against the algorithm computed in Python.

Usage::

    python examples/pipeline_app.py
"""

from repro.core.bow_sm import simulate_design
from repro.gpu.memory import MemoryModel
from repro.kernels.library import (
    INPUT_BASE,
    OUTPUT_BASE,
    read_outputs,
    reduction_sum,
    saxpy,
)
from repro.stats.report import format_percent

N = 12
SCALE = 5
X = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]
Y = [2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5]


def preload_inputs(warp_id: int = 0) -> dict:
    data = {}
    for index, value in enumerate(X + Y):
        address = MemoryModel.thread_address(warp_id, INPUT_BASE + 4 * index)
        data[address] = value
    return data


def run_app(design: str) -> tuple:
    """Launch saxpy then reduction under ``design``; return (sum, stats)."""
    # Kernel 1: y = SCALE*x + y, overwriting y at INPUT_BASE + 4*N.
    k1 = saxpy(N, scale=SCALE).trace(num_warps=1, seed=1)
    r1 = simulate_design(design, k1, window_size=3,
                         preload=preload_inputs(), memory_seed=3)

    # Kernel 2 reads its input where kernel 1 left the data: the whole
    # memory image flows forward, exactly like a real dependent launch.
    k2_preload = dict(r1.memory_image)
    # reduction_sum reads from INPUT_BASE; alias y's location onto it.
    for index in range(N):
        src = MemoryModel.thread_address(0, INPUT_BASE + 4 * (N + index))
        dst = MemoryModel.thread_address(0, INPUT_BASE + 4 * index)
        k2_preload[dst] = k2_preload.get(src, 0)

    k2 = reduction_sum(N).trace(num_warps=1, seed=1)
    r2 = simulate_design(design, k2, window_size=3,
                         preload=k2_preload, memory_seed=3)

    total = read_outputs(r2.memory_image, 0, 1, base=OUTPUT_BASE)[0]
    cycles = r1.counters.cycles + r2.counters.cycles
    rf_accesses = (r1.counters.rf_reads + r1.counters.rf_writes
                   + r2.counters.rf_reads + r2.counters.rf_writes)
    return total, cycles, rf_accesses


def main() -> None:
    expected = sum(SCALE * x + y for x, y in zip(X, Y))
    print(f"App: reduce(saxpy(x, y)) over {N} elements; "
          f"expected sum = {expected}\n")

    results = {}
    for design in ("baseline", "bow-wr"):
        total, cycles, rf = run_app(design)
        results[design] = (cycles, rf)
        status = "OK" if total == expected else "WRONG"
        print(f"{design:9s} sum={total}  [{status}]  "
              f"cycles={cycles}  RF accesses={rf}")
        if total != expected:
            raise SystemExit("functional mismatch - this is a bug")

    base_cycles, base_rf = results["baseline"]
    bow_cycles, bow_rf = results["bow-wr"]
    print(f"\nAcross the whole app, BOW-WR cut RF accesses by "
          f"{format_percent(1 - bow_rf / base_rf)} and cycles by "
          f"{format_percent(1 - bow_cycles / base_cycles)}.")


if __name__ == "__main__":
    main()
