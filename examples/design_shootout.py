"""Shoot-out: every design on every benchmark of the Table III suite.

Runs baseline, BOW, BOW-WB, BOW-WR, half-size BOW-WR and the RFC
comparison point over the whole suite and prints an IPC / energy
summary — the condensed form of the paper's Figures 10-13 plus the
SS V-A RFC comparison.

Usage::

    python examples/design_shootout.py [--full]

``--full`` uses 32 warps and longer traces (several minutes); the
default is a quick 8-warp pass.
"""

import sys

from repro import EnergyModel
from repro.experiments.runner import FULL, RunScale, run_design
from repro.kernels.suites import benchmark_names
from repro.stats.report import format_percent, format_table

DESIGNS = ("bow", "bow-wb", "bow-wr", "bow-wr-half", "rfc")


def main() -> None:
    scale = FULL if "--full" in sys.argv else RunScale(num_warps=8,
                                                       trace_scale=0.15)
    model = EnergyModel()
    rows = []
    gains = {design: [] for design in DESIGNS}
    savings = {design: [] for design in DESIGNS}

    for bench in benchmark_names():
        base = run_design(bench, "baseline", scale=scale)
        row = [bench]
        for design in DESIGNS:
            result = run_design(bench, design, window_size=3, scale=scale)
            gain = result.ipc / base.ipc - 1.0
            gains[design].append(gain)
            savings[design].append(
                model.savings(result.counters, base.counters)
            )
            row.append(format_percent(gain))
        rows.append(row)
        print(f"  {bench} done")

    average = ["AVERAGE"]
    for design in DESIGNS:
        average.append(
            format_percent(sum(gains[design]) / len(gains[design]))
        )
    rows.append(average)

    print()
    print(format_table(["benchmark"] + list(DESIGNS), rows,
                       title="IPC improvement over baseline (IW=3)"))

    print("\nAverage RF dynamic-energy savings:")
    for design in DESIGNS:
        value = sum(savings[design]) / len(savings[design])
        print(f"  {design:12s} {format_percent(value)}")
    print("\nPaper headlines: BOW +11% IPC / -36% energy; "
          "BOW-WR +13% / -55%; RFC <+2%.")


if __name__ == "__main__":
    main()
