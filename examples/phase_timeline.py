"""Phase behaviour over time, on a kernel built with the fluent API.

Constructs a two-phase kernel with the :class:`KernelBuilder` — a
memory-bound streaming phase followed by a compute-bound accumulation
phase — then samples the run with a :class:`Timeline` to show IPC and
bypass activity shifting between phases.

Usage::

    python examples/phase_timeline.py
"""

from repro.config import BOWConfig
from repro.core.boc import BOWCollectors
from repro.gpu.sm import SMEngine
from repro.kernels.builder import KernelBuilder
from repro.stats.report import format_percent
from repro.stats.timeline import Timeline


def build_two_phase_kernel() -> KernelBuilder:
    b = KernelBuilder("two-phase")
    b.mov(1, imm=0)        # accumulator
    b.mov(2, imm=0x100)    # stream pointer
    b.jump("stream")

    # Phase 1: streaming loads, little reuse.
    b.block("stream")
    b.ld(3, addr=2)
    b.add(2, 2, imm=4)
    b.ld(4, addr=2)
    b.add(2, 2, imm=4)
    b.add(5, 3, 4)
    b.st(addr=2, value=5)
    b.branch(taken="stream", fallthrough="compute", probability=0.85)

    # Phase 2: dense accumulation, heavy operand reuse.
    b.block("compute")
    b.mul(6, 5, 5)
    b.mad(1, 6, 5, 1)
    b.add(6, 6, 1)
    b.mad(1, 6, 6, 1)
    b.shl(6, 6, imm=1)
    b.add(1, 1, 6)
    b.branch(taken="compute", fallthrough="done", probability=0.85)

    b.block("done")
    b.st(addr=2, value=1)
    b.exit()
    return b


def main() -> None:
    trace = build_two_phase_kernel().trace(num_warps=12, seed=3)
    print(f"Two-phase kernel: {trace.total_instructions} dynamic "
          f"instructions, {format_percent(trace.memory_fraction())} memory\n")

    timeline = Timeline(interval=200)
    engine = SMEngine(
        trace,
        provider_factory=lambda e: BOWCollectors(e, BOWConfig()),
        timeline=timeline,
        memory_seed=9,
    )
    result = engine.run()

    print(f"Completed in {result.counters.cycles} cycles "
          f"(IPC {result.ipc:.3f}); "
          f"{format_percent(result.counters.read_bypass_rate)} of reads "
          "forwarded overall.\n")
    print(timeline.format(width=60))
    bypass = timeline.bypass_series()
    if bypass:
        head = sum(bypass[: len(bypass) // 2]) / max(1, len(bypass) // 2)
        tail = sum(bypass[len(bypass) // 2:]) / max(1, len(bypass)
                                                    - len(bypass) // 2)
        print(f"\nBypass share, first half:  {format_percent(head)}")
        print(f"Bypass share, second half: {format_percent(tail)}")
    print("\nThe sparkline shows the run's phases: the issue burst while "
          "every warp streams, the decay as warps serialize on their "
          "accumulation chains, and the long drain tail where a few "
          "stragglers finish - aggregate counters average all of this "
          "away.")


if __name__ == "__main__":
    main()
