"""Regenerate every table and figure of the paper in one go.

Usage::

    python examples/reproduce_paper.py [--full] [ARTIFACT ...]

Without arguments, runs every registered experiment at the quick scale
and prints each report.  Pass artifact ids (``fig3``, ``table1``,
``fig10``...) to run a subset; ``--full`` switches to the 32-warp
configuration the final numbers use.
"""

import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.runner import FULL, QUICK


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scale = FULL if "--full" in sys.argv else QUICK
    artifacts = args or list(EXPERIMENTS)

    for artifact in artifacts:
        description, _ = EXPERIMENTS[artifact.lower()]
        print(f"\n{'=' * 72}\n{artifact}: {description}\n{'=' * 72}")
        start = time.time()
        print(run_experiment(artifact, scale=scale))
        print(f"\n[{artifact} regenerated in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
